"""AdaptiveBatchPolicy feedback control and the coalescer deadline queue."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.runtime.batching import (AdaptiveBatchPolicy, BatchPolicy, Bucket,
                                    Coalescer, resolve_batching)

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class _FakeInstance:
    def __init__(self, op_type="Tanh"):
        self.op = type("Op", (), {"op_type": op_type})()


class TestAdaptiveConvergence:
    def test_min_batch_converges_to_half_stationary_width(self):
        """Stationary flush width W: min_batch_for -> clamp(W/2)."""
        policy = AdaptiveBatchPolicy(max_batch=64)
        for _ in range(60):
            policy.observe("sig", 24, "drain")
        assert policy.min_batch_for("sig") == 12
        state = policy._signatures["sig"]
        assert state.width_ema == pytest.approx(24, abs=0.5)

    def test_min_batch_clamped_to_bounds(self):
        policy = AdaptiveBatchPolicy(max_batch=16)
        for _ in range(60):
            policy.observe("narrow", 2, "drain")
        assert policy.min_batch_for("narrow") == policy.min_batch
        for _ in range(60):
            policy.observe("wide", 500, "full")
        assert policy.min_batch_for("wide") <= policy.max_batch

    def test_timeout_decays_when_starved(self):
        """Deadline expiries below min size shrink the signature timeout to
        its floor — waiting longer was pure latency."""
        policy = AdaptiveBatchPolicy()
        t0 = policy.timeout_for("sig")
        for _ in range(40):
            policy.observe("sig", 1, "timeout")
        assert policy.timeout_for("sig") < t0
        assert policy.timeout_for("sig") == pytest.approx(policy.min_timeout)

    def test_timeout_grows_when_buckets_run_full(self):
        policy = AdaptiveBatchPolicy()
        t0 = policy.timeout_for("sig")
        for _ in range(40):
            policy.observe("sig", policy.max_batch, "full")
        assert policy.timeout_for("sig") > t0
        assert policy.timeout_for("sig") <= policy.max_timeout

    @SETTINGS
    @given(widths=st.lists(st.integers(1, 64), min_size=1, max_size=200),
           causes=st.lists(st.sampled_from(["full", "drain", "timeout"]),
                           min_size=1, max_size=200))
    def test_knobs_always_stay_in_bounds(self, widths, causes):
        """Whatever the observation stream, the tuned knobs stay sane."""
        policy = AdaptiveBatchPolicy()
        for width, cause in zip(widths, causes):
            policy.observe("sig", width, cause)
            assert (policy.min_batch <= policy.min_batch_for("sig")
                    <= policy.max_batch)
            assert (policy.min_timeout <= policy.timeout_for("sig")
                    <= max(policy.max_timeout, policy.flush_timeout))

    def test_signatures_tuned_independently(self):
        policy = AdaptiveBatchPolicy()
        for _ in range(40):
            policy.observe("hot", 32, "drain")
            policy.observe("cold", 1, "timeout")
        assert policy.min_batch_for("hot") > policy.min_batch_for("cold")
        assert policy.timeout_for("cold") < policy.timeout_for("hot")

    def test_snapshot_exposes_state(self):
        policy = AdaptiveBatchPolicy()
        policy.observe(("MatMul", (), ()), 16, "drain")
        snap = policy.snapshot()
        assert ("MatMul", (), ()) in snap
        state = snap[("MatMul", (), ())]
        assert state["width_ema"] > 0 and state["min_batch"] >= 2
        assert state["timeout"] > 0 and state["flushes"] == 1


class TestResolveBatching:
    def test_bool_passthrough(self):
        assert resolve_batching(False, None) == (False, None)
        enabled, policy = resolve_batching(True, None)
        assert enabled and policy is None

    def test_adaptive_selects_adaptive_policy(self):
        enabled, policy = resolve_batching("adaptive", None)
        assert enabled and isinstance(policy, AdaptiveBatchPolicy)

    def test_adaptive_keeps_explicit_policy(self):
        mine = AdaptiveBatchPolicy(max_batch=8)
        assert resolve_batching("adaptive", mine) == (True, mine)


class TestDeadlineQueue:
    """pop_expired through the insertion-ordered deadline heap."""

    def test_earliest_deadline_pops_first(self):
        policy = BatchPolicy(max_batch=10, flush_timeout=1.0)
        co = Coalescer(policy)
        co.offer("a", _FakeInstance(), [1], now=0.0)
        co.offer("b", _FakeInstance(), [2], now=0.5)
        assert co.pop_expired(now=0.9) is None
        assert co.pop_expired(now=1.2).signature == "a"
        assert co.pop_expired(now=1.2) is None
        assert co.pop_expired(now=1.6).signature == "b"

    def test_stale_entries_are_discarded_lazily(self):
        """Buckets flushed by other paths leave stale heap entries that
        must not resurface — including when the same signature reopens."""
        policy = BatchPolicy(max_batch=2, flush_timeout=1.0)
        co = Coalescer(policy)
        co.offer("a", _FakeInstance(), [1], now=0.0)
        full = co.offer("a", _FakeInstance(), [2], now=0.1)  # flushes full
        assert full is not None and len(full) == 2
        # reopen the same signature later; its deadline is fresh
        co.offer("a", _FakeInstance(), [3], now=5.0)
        assert co.pop_expired(now=1.5) is None  # stale entry skipped
        bucket = co.pop_expired(now=6.1)
        assert bucket is not None and bucket.inputs == [[3]]

    def test_pop_drain_leaves_no_expirable_ghost(self):
        co = Coalescer(BatchPolicy(max_batch=10, flush_timeout=0.5))
        co.offer("a", _FakeInstance(), [1], now=0.0)
        assert co.pop() is not None
        assert co.pop_expired(now=100.0) is None

    def test_per_signature_timeouts_drive_deadlines(self):
        """With an adaptive policy, a starved signature's shrunken timeout
        expires its buckets sooner than a fresh signature's."""
        policy = AdaptiveBatchPolicy(flush_timeout=1.0, min_timeout=0.01)
        for _ in range(40):
            policy.observe("starved", 1, "timeout")
        co = Coalescer(policy)
        co.offer("fresh", _FakeInstance(), [1], now=0.0)
        co.offer("starved", _FakeInstance(), [2], now=0.0)
        bucket = co.pop_expired(now=0.05)
        assert bucket is not None and bucket.signature == "starved"
        assert co.pop_expired(now=0.05) is None  # "fresh" still waiting

    @SETTINGS
    @given(offers=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.floats(0, 10)),
        min_size=1, max_size=60))
    def test_expiry_never_loses_instances(self, offers):
        """Arbitrary offer/expiry interleavings conserve instances."""
        co = Coalescer(BatchPolicy(max_batch=4, flush_timeout=0.5))
        flushed = 0
        now = 0.0
        for signature, dt in sorted(offers, key=lambda o: o[1]):
            now = max(now, dt)
            full = co.offer(signature, _FakeInstance(), [signature], now=now)
            if full is not None:
                flushed += len(full)
            expired = co.pop_expired(now)
            if expired is not None:
                flushed += len(expired)
        while (bucket := co.pop()) is not None:
            flushed += len(bucket)
        assert flushed == len(offers)
        assert len(co) == 0


class TestAdaptiveEndToEnd:
    def test_adaptive_session_bitwise_and_fused(self):
        """batching="adaptive" through a real recursive model: values
        bit-identical, fusion happens, histogram stats populated."""
        from repro.data import make_treebank
        from repro.data.batching import batch_trees
        from repro.models import TreeLSTMSentiment, tree_lstm_config

        bank = make_treebank(num_train=8, num_val=2, vocab_size=40, seed=3)
        model = TreeLSTMSentiment(
            tree_lstm_config(hidden=8, embed_dim=6, vocab_size=40),
            repro.Runtime())
        built = model.build_recursive(4)
        feeds = built.feed_dict(batch_trees(bank.train[:4]))
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=16).run(built.root_logits, feeds)
        sess = repro.Session(built.graph, model.runtime, num_workers=16,
                             batching="adaptive")
        out = sess.run(built.root_logits, feeds)
        assert np.array_equal(ref, out)
        stats = sess.last_stats
        assert stats.batches > 0
        assert stats.batch_width_hist  # per-signature histograms populated
        assert isinstance(sess._engine.batch_policy, AdaptiveBatchPolicy)
        assert sess._engine.batch_policy.snapshot()

    def test_histogram_reporting_renders(self):
        from repro.harness import format_adaptive_policy, format_batch_histogram
        from repro.runtime.stats import RunStats

        stats = RunStats()
        stats.note_batch("MatMul", 8, 0.1, ("MatMul", (), ()))
        stats.note_batch("MatMul", 8, 0.1, ("MatMul", (), ()))
        stats.note_batch("Add", 3, 0.1)
        text = format_batch_histogram(stats)
        assert "MatMul" in text and "w=8" in text and "Add" in text

        policy = AdaptiveBatchPolicy()
        policy.observe(("MatMul", (), ()), 16, "drain")
        rendered = format_adaptive_policy(policy)
        assert "MatMul" in rendered and "width_ema" in rendered
        fixed = format_adaptive_policy(BatchPolicy())
        assert "fixed" in fixed
