"""Tests for the folding baseline and TD-TreeLSTM dynamic model."""

import numpy as np
import pytest

import repro
from repro.baselines import FoldingExecutor, build_schedule
from repro.data import batch_trees, make_treebank
from repro.models import (ModelConfig, TDTreeLSTM, TreeLSTMSentiment,
                          TreeRNNSentiment, tree_lstm_config)
from repro.nn import Adagrad, SGD, Trainer


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=12, num_val=4, vocab_size=40,
                         max_words=14, mean_log_words=2.0, seed=9)


class TestFoldingSchedule:
    def test_levels_respect_dependencies(self, bank):
        batch = batch_trees(bank.train[:4])
        schedule = build_schedule(batch)
        level_of = np.zeros(schedule.total, dtype=np.int64)
        for depth, slots in enumerate(schedule.levels):
            level_of[slots] = depth
        for slot in range(schedule.total):
            if schedule.left[slot] >= 0:
                assert level_of[schedule.left[slot]] < level_of[slot]
                assert level_of[schedule.right[slot]] < level_of[slot]

    def test_level_zero_is_all_leaves(self, bank):
        batch = batch_trees(bank.train[:4])
        schedule = build_schedule(batch)
        assert np.all(schedule.left[schedule.levels[0]] == -1)

    def test_total_nodes(self, bank):
        batch = batch_trees(bank.train[:4])
        schedule = build_schedule(batch)
        assert schedule.total == batch.total_nodes

    def test_weights_sum_to_batch_normalizer(self, bank):
        batch = batch_trees(bank.train[:4])
        schedule = build_schedule(batch)
        # per-instance weights sum to 1/B each -> total = 1
        assert schedule.weight.sum() == pytest.approx(1.0)

    def test_depth_matches_deepest_tree(self, bank):
        trees = bank.train[:4]
        batch = batch_trees(trees)
        schedule = build_schedule(batch)
        assert schedule.depth == max(t.depth for t in trees)


class TestFoldingEquivalence:
    @pytest.mark.parametrize("model_cls,config", [
        (TreeRNNSentiment, ModelConfig(vocab_size=40, hidden=8,
                                       embed_dim=8)),
        (TreeLSTMSentiment, tree_lstm_config(vocab_size=40, hidden=8,
                                             embed_dim=6)),
    ], ids=["treernn", "treelstm"])
    def test_matches_recursive_loss_and_grads(self, bank, model_cls,
                                              config):
        batch = batch_trees(bank.train[:3])
        runtime = repro.Runtime()
        model = model_cls(config, runtime)
        built = model.build_recursive(3)
        trainer = Trainer(built.graph, built.loss, Adagrad(0.05), runtime,
                          session_kwargs={"num_workers": 4})
        ref_loss = trainer.compute_gradients(built.feed_dict(batch))
        ref_grads = trainer.gradient_snapshot()

        fold = FoldingExecutor(model)
        loss, _, state, _ = fold.forward(batch)
        grads, _ = fold.backward(state)
        assert loss == pytest.approx(ref_loss, abs=1e-5)
        for name in ref_grads:
            np.testing.assert_allclose(grads[name], ref_grads[name],
                                       atol=1e-4, err_msg=name)

    def test_train_step_updates_parameters(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(ModelConfig(vocab_size=40, hidden=8,
                                             embed_dim=8), runtime)
        fold = FoldingExecutor(model)
        before = runtime.variables.read("treernn/cell/W").copy()
        batch = batch_trees(bank_trees := bank.train[:3])
        fold.train_step(batch, SGD(0.5))
        after = runtime.variables.read("treernn/cell/W")
        assert not np.allclose(before, after)

    def test_virtual_time_positive_and_scales(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(ModelConfig(vocab_size=40, hidden=8,
                                             embed_dim=8), runtime)
        fold = FoldingExecutor(model)
        _, _, _, t_small = fold.forward(batch_trees(bank.train[:1]))
        _, _, _, t_large = fold.forward(batch_trees(bank.train[:8]))
        assert 0 < t_small < t_large


class TestTDTreeLSTM:
    @pytest.fixture(scope="class")
    def td(self):
        runtime = repro.Runtime()
        config = ModelConfig(vocab_size=40, hidden=12, embed_dim=12, seed=2)
        return TDTreeLSTM(config, runtime, max_depth=5), runtime

    def test_recursive_generates_finite_trees(self, td):
        model, runtime = td
        built = model.build_recursive(4)
        session = repro.Session(built.graph, runtime, num_workers=8)
        seeds = np.array([1, 5, 9, 13], dtype=np.int32)
        counts = session.run(built.node_counts, built.feed_dict(seeds))
        limit = 2 ** (model.max_depth + 1) - 1
        assert np.all(counts >= 1)
        assert np.all(counts <= limit)

    def test_iterative_matches_recursive(self, td):
        model, runtime = td
        rec = model.build_recursive(4)
        it = model.build_iterative(4)
        seeds = np.array([3, 8, 21, 34], dtype=np.int32)
        s1 = repro.Session(rec.graph, runtime, num_workers=8)
        s2 = repro.Session(it.graph, runtime, num_workers=8)
        counts_rec = s1.run(rec.node_counts, rec.feed_dict(seeds))
        counts_it = s2.run(it.node_counts, it.feed_dict(seeds))
        np.testing.assert_array_equal(counts_rec, counts_it)

    def test_structure_is_value_dependent(self, td):
        """Different seeds genuinely produce different structures — the
        property that makes folding inapplicable."""
        model, runtime = td
        built = model.build_recursive(8)
        session = repro.Session(built.graph, runtime, num_workers=8)
        seeds = np.arange(8, dtype=np.int32)
        counts = session.run(built.node_counts, built.feed_dict(seeds))
        assert len(set(int(c) for c in counts)) > 1

    def test_recursive_faster_in_virtual_time(self, td):
        model, runtime = td
        rec = model.build_recursive(8)
        it = model.build_iterative(8)
        seeds = np.arange(10, 18, dtype=np.int32)
        s1 = repro.Session(rec.graph, runtime, num_workers=36)
        s2 = repro.Session(it.graph, runtime, num_workers=36)
        s1.run(rec.node_counts, rec.feed_dict(seeds))
        s2.run(it.node_counts, it.feed_dict(seeds))
        assert (s1.last_stats.virtual_time
                < s2.last_stats.virtual_time)

    def test_depth_cap_enforced(self):
        runtime = repro.Runtime()
        config = ModelConfig(vocab_size=40, hidden=8, embed_dim=8, seed=4)
        model = TDTreeLSTM(config, runtime, max_depth=2)
        built = model.build_recursive(4)
        session = repro.Session(built.graph, runtime, num_workers=4)
        counts = session.run(built.node_counts,
                             built.feed_dict(np.arange(4, dtype=np.int32)))
        assert np.all(counts <= 7)  # 2^(2+1) - 1
