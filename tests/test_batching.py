"""Cross-instance dynamic micro-batching: equivalence, bucketing, policy.

The contract under test: running any graph with ``batching=True`` must
produce outputs *bit-for-bit identical* to the unbatched engines while
actually fusing work (stats record fused kernel calls), and the
coalescing machinery (signatures, buckets, flush policy) must behave per
:mod:`repro.runtime.batching`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import ops
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.harness import compare_batching
from repro.models import (ModelConfig, RNTNSentiment, TreeLSTMSentiment,
                          TreeRNNSentiment, tree_lstm_config)
from repro.runtime.batching import (BatchPolicy, Bucket, Coalescer,
                                    batch_signature)
from repro.runtime.cost_model import unit_cost

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

MODEL_FACTORIES = {
    "TreeRNN": lambda rt: TreeRNNSentiment(ModelConfig(hidden=16,
                                                       embed_dim=16,
                                                       vocab_size=60), rt),
    "RNTN": lambda rt: RNTNSentiment(ModelConfig(hidden=12, embed_dim=12,
                                                 vocab_size=60), rt),
    "TreeLSTM": lambda rt: TreeLSTMSentiment(
        tree_lstm_config(hidden=16, embed_dim=8, vocab_size=60), rt),
}
ALL_MODELS = sorted(MODEL_FACTORIES)


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=24, num_val=4, vocab_size=60, seed=11)


def _recursive_setup(model_name, bank, batch_size):
    model = MODEL_FACTORIES[model_name](repro.Runtime())
    built = model.build_recursive(batch_size)
    batch = batch_trees(bank.train[:batch_size])
    return model, built, built.feed_dict(batch)


# -- equivalence across engines ------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_event_engine_bitwise(self, model_name, bank):
        model, built, feeds = _recursive_setup(model_name, bank, 4)
        fetches = [built.root_logits, built.loss]
        plain = repro.Session(built.graph, model.runtime, num_workers=36)
        ref_logits, ref_loss = plain.run(fetches, feeds)
        assert plain.last_stats.batches == 0

        batched = repro.Session(built.graph, model.runtime, num_workers=36,
                                batching=True)
        logits, loss = batched.run(fetches, feeds)
        assert batched.last_stats.batches > 0
        assert np.array_equal(ref_logits, logits)
        assert np.array_equal(np.asarray(ref_loss), np.asarray(loss))

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_threaded_engine_bitwise(self, model_name, bank):
        model, built, feeds = _recursive_setup(model_name, bank, 4)
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=36).run(built.root_logits, feeds)
        sess = repro.Session(built.graph, model.runtime, num_workers=4,
                             engine="threaded", batching=True)
        out = sess.run(built.root_logits, feeds)
        assert np.array_equal(ref, out)
        assert sess.last_stats.batches > 0

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           batch_size=st.integers(min_value=1, max_value=6))
    def test_random_trees_bitwise(self, bank, seed, batch_size):
        """Random tree subsets: batched == unbatched, bit for bit."""
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(bank.train), size=batch_size, replace=False)
        model = MODEL_FACTORIES["TreeRNN"](repro.Runtime())
        built = model.build_recursive(batch_size)
        feeds = built.feed_dict(batch_trees([bank.train[i] for i in idx]))
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=8).run(built.root_logits, feeds)
        out = repro.Session(built.graph, model.runtime, num_workers=8,
                            batching=True).run(built.root_logits, feeds)
        assert np.array_equal(ref, out)

    def test_run_level_batching_override(self, bank):
        """``Session.run(batching=...)`` flips the mode per call."""
        model, built, feeds = _recursive_setup("TreeRNN", bank, 2)
        sess = repro.Session(built.graph, model.runtime, num_workers=8)
        ref = sess.run(built.root_logits, feeds)
        assert sess.last_stats.batches == 0
        out = sess.run(built.root_logits, feeds, batching=True)
        assert sess.last_stats.batches > 0
        assert np.array_equal(ref, out)

    def test_serving_comparison_bitwise_and_fused(self, bank):
        model = MODEL_FACTORIES["TreeLSTM"](repro.Runtime())
        unbatched, batched = compare_batching(model, bank.train, 8,
                                              num_workers=36, waves=1,
                                              seed=5)
        assert np.array_equal(unbatched.logits, batched.logits)
        assert batched.stats.batches > 0
        assert unbatched.stats.batches == 0


# -- the throughput claim ------------------------------------------------------

class TestThroughput:
    def test_serving_speedup_at_32_concurrent_trees(self, bank):
        """The acceptance bar: >= 2x batched speedup at concurrency 32."""
        model = MODEL_FACTORIES["TreeLSTM"](repro.Runtime())
        unbatched, batched = compare_batching(model, bank.train, 32,
                                              num_workers=36, waves=1,
                                              seed=7)
        assert np.array_equal(unbatched.logits, batched.logits)
        speedup = batched.throughput / unbatched.throughput
        assert speedup >= 2.0, f"only {speedup:.2f}x at concurrency 32"
        # cross-instance fusion really happened, at substantial widths
        assert batched.stats.max_batch >= 16

    def test_deterministic_virtual_time(self, bank):
        """The batched event engine stays a deterministic simulator."""
        model, built, feeds = _recursive_setup("TreeRNN", bank, 4)
        times = set()
        for _ in range(3):
            sess = repro.Session(built.graph, model.runtime, num_workers=36,
                                 batching=True)
            sess.run(built.root_logits, feeds)
            times.add(round(sess.last_stats.virtual_time, 12))
        assert len(times) == 1


# -- batch signatures ----------------------------------------------------------

def _sig_of(graph_fn, inputs):
    """Build a tiny graph, return the signature of its single op."""
    graph = repro.Graph("sig")
    with graph.as_default():
        out = graph_fn()
    return batch_signature(out.op, inputs)


class TestBatchSignature:
    def test_same_shape_same_signature(self):
        a = np.zeros((2, 3), np.float32)
        s1 = _sig_of(lambda: ops.tanh(ops.placeholder(repro.float32)), [a])
        s2 = _sig_of(lambda: ops.tanh(ops.placeholder(repro.float32)),
                     [np.ones((2, 3), np.float32)])
        assert s1 is not None and s1 == s2

    @SETTINGS
    @given(r1=st.integers(min_value=1, max_value=4),
           c1=st.integers(min_value=1, max_value=4),
           r2=st.integers(min_value=1, max_value=4),
           c2=st.integers(min_value=1, max_value=4))
    def test_signature_distinguishes_shapes(self, r1, c1, r2, c2):
        x = np.zeros((r1, c1), np.float32)
        y = np.zeros((r2, c2), np.float32)
        builder = lambda: ops.tanh(ops.placeholder(repro.float32))
        same = _sig_of(builder, [x]) == _sig_of(builder, [y])
        assert same == ((r1, c1) == (r2, c2))

    def test_signature_distinguishes_dtypes_and_types(self):
        builder = lambda: ops.tanh(ops.placeholder(repro.float32))
        f32 = _sig_of(builder, [np.zeros(3, np.float32)])
        f64 = _sig_of(builder, [np.zeros(3, np.float64)])
        pyf = _sig_of(builder, [3.0])
        assert len({f32, f64, pyf}) == 3

    def test_signature_includes_batch_attrs(self):
        x = np.zeros((2, 2), np.float32)
        c0 = _sig_of(lambda: ops.concat(
            [ops.placeholder(repro.float32, (2, 2)),
             ops.placeholder(repro.float32, (2, 2))], axis=0), [x, x])
        c1 = _sig_of(lambda: ops.concat(
            [ops.placeholder(repro.float32, (2, 2)),
             ops.placeholder(repro.float32, (2, 2))], axis=1), [x, x])
        assert c0 != c1

    def test_unbatchable_ops_have_no_signature(self):
        # stateful (ReadVariable) and async (Invoke) ops never batch
        runtime = repro.Runtime()
        graph = repro.Graph("sig")
        with graph.as_default():
            v = repro.Variable("sig_v", np.float32(1.0), runtime=runtime)
            read = v.read()
        assert batch_signature(read.op, []) is None


# -- coalescer policy ----------------------------------------------------------

class _FakeInstance:
    def __init__(self, op_type="Tanh"):
        self.op = type("Op", (), {"op_type": op_type})()


class TestCoalescer:
    def test_full_bucket_is_returned_and_removed(self):
        co = Coalescer(BatchPolicy(max_batch=3))
        full = None
        for i in range(3):
            assert full is None
            full = co.offer("sig", _FakeInstance(), [i])
        assert isinstance(full, Bucket)
        assert len(full) == 3
        assert full.inputs == [[0], [1], [2]]       # arrival order kept
        assert len(co) == 0

    @SETTINGS
    @given(n=st.integers(min_value=1, max_value=40),
           cap=st.integers(min_value=1, max_value=8))
    def test_bucketing_partitions_offers(self, n, cap):
        """N same-signature offers yield floor(N/cap) full buckets plus a
        remainder bucket; nothing is lost or duplicated."""
        co = Coalescer(BatchPolicy(max_batch=cap))
        full_sizes = []
        for i in range(n):
            full = co.offer("sig", _FakeInstance(), [i])
            if full is not None:
                full_sizes.append(len(full))
        assert full_sizes == [cap] * (n // cap)
        assert len(co) == n % cap
        rest = co.pop()
        if n % cap:
            assert len(rest) == n % cap
        else:
            assert rest is None

    def test_pop_is_fifo_over_buckets(self):
        co = Coalescer(BatchPolicy(max_batch=10))
        co.offer("a", _FakeInstance(), [1])
        co.offer("b", _FakeInstance(), [2])
        co.offer("a", _FakeInstance(), [3])
        assert co.pop().signature == "a"
        assert co.pop().signature == "b"
        assert co.pop() is None

    def test_popping_all_buckets_returns_everything(self):
        co = Coalescer(BatchPolicy(max_batch=10))
        for sig in ("a", "b", "a", "c"):
            co.offer(sig, _FakeInstance(), [sig])
        buckets = []
        while (bucket := co.pop()) is not None:
            buckets.append(bucket)
        assert sorted(b.signature for b in buckets) == ["a", "b", "c"]
        assert sum(len(b) for b in buckets) == 4
        assert len(co) == 0

    def test_pop_expired_honours_flush_timeout(self):
        co = Coalescer(BatchPolicy(max_batch=10, flush_timeout=1.0))
        co.offer("a", _FakeInstance(), [1], now=5.0)
        assert co.pop_expired(now=5.5) is None
        bucket = co.pop_expired(now=6.1)
        assert bucket is not None and bucket.signature == "a"
        assert co.pop_expired(now=100.0) is None  # table now empty

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(min_batch=1)  # a batch of one is scalar execution
        with pytest.raises(ValueError):
            BatchPolicy(flush_timeout=0.0)


# -- scheduler accounting ------------------------------------------------------

class TestBatchedScheduling:
    def test_unit_cost_fused_makespan(self, runtime):
        """8 identical ready tanh ops on one worker: unbatched costs 8
        virtual seconds, fused costs 1 (one batch = one unit kernel)."""
        graph = repro.Graph("fuse")
        with graph.as_default():
            x = ops.placeholder(repro.float32, (2,))
            outs = [ops.tanh(ops.multiply(x, float(i + 1)))
                    for i in range(8)]
            total = outs[0]
            for o in outs[1:]:
                total = ops.add(total, o)
        feeds = {x: np.ones(2, np.float32)}

        plain = repro.Session(graph, runtime, num_workers=1,
                              cost_model=unit_cost())
        ref = plain.run(total, feeds)
        t_plain = plain.last_stats.virtual_time

        fused = repro.Session(graph, runtime, num_workers=1,
                              cost_model=unit_cost(), batching=True)
        out = fused.run(total, feeds)
        assert np.array_equal(ref, out)
        assert fused.last_stats.batches > 0
        assert fused.last_stats.virtual_time < t_plain

    def test_batch_stats_accounting(self, bank):
        model, built, feeds = _recursive_setup("TreeLSTM", bank, 6)
        sess = repro.Session(built.graph, model.runtime, num_workers=36,
                             batching=True)
        sess.run(built.root_logits, feeds)
        stats = sess.last_stats
        assert stats.batched_ops >= 2 * stats.batches  # min_batch >= 2
        assert 2.0 <= stats.batch_efficiency <= stats.max_batch
        assert "MatMul" in stats.batch_count_by_type
        assert "Gather" in stats.batch_count_by_type

    def test_max_batch_cap_respected(self, bank):
        model, built, feeds = _recursive_setup("TreeRNN", bank, 6)
        sess = repro.Session(built.graph, model.runtime, num_workers=36,
                             batching=True,
                             batch_policy=repro.BatchPolicy(max_batch=4))
        out = sess.run(built.root_logits, feeds)
        assert sess.last_stats.max_batch <= 4
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=36).run(built.root_logits, feeds)
        assert np.array_equal(ref, out)

    def test_batching_composes_with_depth_scheduler(self, bank):
        model, built, feeds = _recursive_setup("TreeRNN", bank, 4)
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=36).run(built.root_logits, feeds)
        sess = repro.Session(built.graph, model.runtime, num_workers=36,
                             scheduler="depth", batching=True)
        out = sess.run(built.root_logits, feeds)
        assert np.array_equal(ref, out)
