"""Concurrency stress tests for the coalescing schedulers.

Real threads, deep recursion near the configured ``max_depth``, and many
concurrent root instances — the situations where a flush-policy bug shows
up as nondeterminism or deadlock.  Every test carries a ``timeout``
watchdog (see conftest) so a deadlock fails fast instead of hanging.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.subgraph import SubGraph
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.models import TreeRNNSentiment
from repro.models.common import ModelConfig
from repro.runtime.batching import BatchPolicy

pytestmark = pytest.mark.stress

WORKER_COUNTS = (1, 2, 8)


def _chain_subgraph(name="deep_chain"):
    """f(x, n) = x + n + (n-1) + ... + 1, one frame per level."""
    with SubGraph(name) as sg:
        x = sg.input(repro.float32, ())
        n = sg.input(repro.int32, ())
        sg.declare_outputs([(repro.float32, ())])
        sg.output(ops.cond(
            ops.less_equal(n, 0),
            lambda: ops.identity(x),
            lambda: ops.add(ops.cast(n, repro.float32), sg(x, n - 1))))
    return sg


class TestDeepRecursionThreaded:
    @pytest.mark.timeout(60)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_deep_chain_near_max_depth(self, workers):
        """Recursion within a few frames of the limit completes and is
        exact for every worker count, batched and unbatched."""
        depth = 120
        graph = repro.Graph("deep")
        runtime = repro.Runtime()
        with graph.as_default():
            sg = _chain_subgraph(f"chain_w{workers}")
            y = sg(ops.constant(2.5), ops.constant(depth))
        expected = 2.5 + depth * (depth + 1) / 2
        # each recursion level spawns an Invoke frame *and* a Cond branch
        # frame, so the frame depth is ~2 levels per call
        for batching in (False, True):
            sess = repro.Session(graph, runtime, num_workers=workers,
                                 engine="threaded", batching=batching,
                                 max_depth=2 * depth + 12)
            assert sess.run(y) == pytest.approx(expected, rel=1e-6)

    @pytest.mark.timeout(60)
    def test_depth_guard_still_fires_when_batched(self):
        graph = repro.Graph("deep_guard")
        runtime = repro.Runtime()
        with graph.as_default():
            sg = _chain_subgraph("chain_guard")
            y = sg(ops.constant(0.0), ops.constant(100))
        sess = repro.Session(graph, runtime, num_workers=2,
                             engine="threaded", batching=True, max_depth=20)
        with pytest.raises(repro.EngineError, match="recursion limit"):
            sess.run(y)


class TestConcurrentRootsThreaded:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_many_concurrent_instances_deterministic(self, workers):
        """16 concurrent tree roots on real threads: values equal the
        virtual-time reference bit-for-bit, run after run."""
        bank = make_treebank(num_train=16, num_val=2, vocab_size=50, seed=23)
        model = TreeRNNSentiment(ModelConfig(hidden=12, embed_dim=12,
                                             vocab_size=50), repro.Runtime())
        built = model.build_recursive(16)
        feeds = built.feed_dict(batch_trees(bank.train[:16]))
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=36).run(built.root_logits, feeds)
        for attempt in range(3):
            sess = repro.Session(built.graph, model.runtime,
                                 num_workers=workers, engine="threaded",
                                 batching=True)
            out = sess.run(built.root_logits, feeds)
            assert np.array_equal(ref, out), \
                f"workers={workers} attempt={attempt} diverged"

    @pytest.mark.timeout(60)
    def test_flush_timeout_bounds_wall_clock(self):
        """A starved bucket must flush within ``flush_timeout``: total wall
        clock stays far below the watchdog even with a large min_batch that
        can never fill (worst case for the holding heuristic)."""
        bank = make_treebank(num_train=4, num_val=1, vocab_size=40, seed=29)
        model = TreeRNNSentiment(ModelConfig(hidden=8, embed_dim=8,
                                             vocab_size=40), repro.Runtime())
        built = model.build_recursive(2)
        feeds = built.feed_dict(batch_trees(bank.train[:2]))
        ref = repro.Session(built.graph, model.runtime,
                            num_workers=8).run(built.root_logits, feeds)
        policy = BatchPolicy(max_batch=4096, min_batch=2,
                             flush_timeout=0.001)
        start = time.perf_counter()
        sess = repro.Session(built.graph, model.runtime, num_workers=2,
                             engine="threaded", batching=True,
                             batch_policy=policy)
        out = sess.run(built.root_logits, feeds)
        elapsed = time.perf_counter() - start
        assert np.array_equal(ref, out)
        assert elapsed < 30.0, f"flush policy stalled: {elapsed:.1f}s"

    @pytest.mark.timeout(120)
    def test_event_and_threaded_agree_under_stress(self):
        """Virtual-time and wall-clock engines agree bit-for-bit with
        batching on, across scheduler policies."""
        bank = make_treebank(num_train=12, num_val=2, vocab_size=40, seed=31)
        model = TreeRNNSentiment(ModelConfig(hidden=8, embed_dim=8,
                                             vocab_size=40), repro.Runtime())
        built = model.build_recursive(8)
        feeds = built.feed_dict(batch_trees(bank.train[:8]))
        results = []
        for engine, workers, scheduler in (("event", 36, "fifo"),
                                           ("event", 36, "depth"),
                                           ("threaded", 4, "fifo")):
            kwargs = {} if engine == "threaded" else \
                {"scheduler": scheduler}
            sess = repro.Session(built.graph, model.runtime,
                                 num_workers=workers, engine=engine,
                                 batching=True, **kwargs)
            results.append(sess.run(built.root_logits, feeds))
        for other in results[1:]:
            assert np.array_equal(results[0], other)
