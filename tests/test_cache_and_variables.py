"""Unit tests for the backprop value cache, variable store, accumulators."""

import threading

import numpy as np
import pytest

import repro
from repro.core.cache import ROOT_KEY, ValueCache, child_key
from repro.runtime.variables import GradientAccumulator, Variable, VariableStore


class TestValueCache:
    def test_store_lookup_roundtrip(self):
        cache = ValueCache()
        cache.store((1,), 10, 5, 0, "payload")
        assert cache.lookup((1,), 10, 5, 0) == "payload"

    def test_distinct_keys_do_not_collide(self):
        cache = ValueCache()
        cache.store((1,), 10, 5, 0, "a")
        cache.store((2,), 10, 5, 0, "b")
        cache.store((1,), 11, 5, 0, "c")
        cache.store((1,), 10, 6, 0, "d")
        cache.store((1,), 10, 5, 1, "e")
        assert cache.lookup((1,), 10, 5, 0) == "a"
        assert cache.lookup((2,), 10, 5, 0) == "b"
        assert cache.lookup((1,), 11, 5, 0) == "c"
        assert cache.lookup((1,), 10, 6, 0) == "d"
        assert cache.lookup((1,), 10, 5, 1) == "e"

    def test_miss_raises_helpfully(self):
        cache = ValueCache()
        with pytest.raises(KeyError, match="cache miss"):
            cache.lookup((9,), 1, 2, 3)

    def test_meta_storage(self):
        cache = ValueCache()
        cache.store_meta(((1,), 4), 17)
        assert cache.lookup_meta(((1,), 4)) == 17
        with pytest.raises(KeyError):
            cache.lookup_meta(((2,), 4))

    def test_clear(self):
        cache = ValueCache()
        cache.store((1,), 1, 1, 0, "x")
        cache.store_meta("m", 1)
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(KeyError):
            cache.lookup_meta("m")

    def test_concurrent_access(self):
        cache = ValueCache()
        errors = []

        def writer(tid):
            try:
                for i in range(200):
                    cache.store((tid,), 1, i, 0, tid * 1000 + i)
                for i in range(200):
                    assert cache.lookup((tid,), 1, i, 0) == tid * 1000 + i
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == 8 * 200

    def test_stats_counters(self):
        cache = ValueCache()
        cache.store((1,), 1, 1, 0, "x")
        cache.lookup((1,), 1, 1, 0)
        assert cache.stores == 1
        assert cache.lookups == 1


class TestFrameKeyUniqueness:
    def test_paths_unique_across_depths(self):
        # two different call paths can never share a key
        a = child_key(child_key(ROOT_KEY, 1), 2)
        b = child_key(child_key(ROOT_KEY, 2), 1)
        assert a != b

    def test_loop_iteration_keys(self):
        parent = child_key(ROOT_KEY, 4)
        k0 = child_key(parent, (9, 0))
        k1 = child_key(parent, (9, 1))
        assert k0 != k1


class TestVariableStore:
    def test_create_read_write(self):
        store = VariableStore()
        store.create("a", np.array([1.0, 2.0]))
        np.testing.assert_allclose(store.read("a"), [1.0, 2.0])
        store.write("a", np.array([3.0]))
        np.testing.assert_allclose(store.read("a"), [3.0])

    def test_duplicate_create_raises(self):
        store = VariableStore()
        store.create("a", np.zeros(1))
        with pytest.raises(ValueError, match="already exists"):
            store.create("a", np.zeros(1))

    def test_missing_read_raises(self):
        store = VariableStore()
        with pytest.raises(KeyError, match="never created"):
            store.read("ghost")

    def test_atomic_add(self):
        store = VariableStore()
        store.create("a", np.zeros(2))
        new = store.add("a", np.ones(2))
        np.testing.assert_allclose(new, [1.0, 1.0])
        np.testing.assert_allclose(store.read("a"), [1.0, 1.0])

    def test_snapshot_restore(self):
        store = VariableStore()
        store.create("a", np.array([1.0]))
        snap = store.snapshot()
        store.write("a", np.array([9.0]))
        store.restore(snap)
        np.testing.assert_allclose(store.read("a"), [1.0])

    def test_totals(self):
        store = VariableStore()
        store.create("a", np.zeros((2, 3), dtype=np.float32))
        assert store.total_parameters() == 6
        assert store.total_bytes() == 24

    def test_concurrent_adds(self):
        store = VariableStore()
        store.create("a", np.zeros(1))

        def adder():
            for _ in range(500):
                store.add("a", np.ones(1))

        threads = [threading.Thread(target=adder) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.read("a")[0] == pytest.approx(2000.0)


class TestGradientAccumulator:
    def test_add_and_read(self):
        acc = GradientAccumulator()
        acc.add("w", np.array([1.0, 2.0]))
        acc.add("w", np.array([0.5, 0.5]))
        np.testing.assert_allclose(acc.read("w"), [1.5, 2.5])

    def test_read_missing_with_shape_gives_zeros(self):
        acc = GradientAccumulator()
        np.testing.assert_allclose(acc.read("w", shape=(2,)), np.zeros(2))

    def test_read_missing_without_shape_raises(self):
        acc = GradientAccumulator()
        with pytest.raises(KeyError):
            acc.read("w")

    def test_zero_clears(self):
        acc = GradientAccumulator()
        acc.add("w", np.ones(2))
        acc.zero()
        assert acc.names() == []

    def test_concurrent_accumulation(self):
        acc = GradientAccumulator()

        def adder():
            for _ in range(300):
                acc.add("g", np.ones(1))

        threads = [threading.Thread(target=adder) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert acc.read("g")[0] == pytest.approx(1200.0)


class TestVariable:
    def test_creation_registers_value(self, runtime):
        v = Variable("x", np.array([1.0, 2.0], dtype=np.float32),
                     runtime=runtime)
        np.testing.assert_allclose(v.value(), [1.0, 2.0])
        assert v in runtime.trainable_variables()

    def test_non_trainable_not_registered(self, runtime):
        v = Variable("slot", np.zeros(1), runtime=runtime, trainable=False)
        assert v not in runtime.trainable_variables()

    def test_float64_initial_downcast(self, runtime):
        v = Variable("d", np.zeros(2, dtype=np.float64), runtime=runtime)
        assert v.dtype is repro.float32

    def test_read_memoized_per_graph(self, runtime):
        v = Variable("m", np.float32(1.0), runtime=runtime)
        g1 = repro.Graph("g1")
        with g1.as_default():
            r1 = v.read()
            r2 = v.read()
        g2 = repro.Graph("g2")
        with g2.as_default():
            r3 = v.read()
        assert r1 is r2
        assert r3 is not r1

    def test_assign_value(self, runtime):
        v = Variable("av", np.float32(1.0), runtime=runtime)
        v.assign_value(5.0)
        assert v.value() == pytest.approx(5.0)
