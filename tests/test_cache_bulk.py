"""Property-based tests for the sharded ValueCache bulk APIs.

The bulk ``store_many``/``lookup_many`` paths must be indistinguishable
from scalar ``store``/``lookup`` sequences — same values, same counters,
same miss errors — under arbitrary interleavings of concurrent frames
(threads standing in for engine workers).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cache import ROOT_KEY, ValueCache, child_key

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

# Frame keys like the engines build: nested call-site tuples.
frame_keys = st.lists(
    st.one_of(st.integers(0, 50),
              st.tuples(st.integers(0, 50), st.integers(0, 5))),
    max_size=4).map(tuple)

entry_strategy = st.tuples(frame_keys, st.integers(0, 5), st.integers(0, 30),
                           st.integers(0, 2), st.integers(-1000, 1000))


class TestBulkEquivalence:
    @SETTINGS
    @given(entries=st.lists(entry_strategy, min_size=1, max_size=60),
           num_shards=st.integers(min_value=1, max_value=32))
    def test_store_many_equals_scalar_stores(self, entries, num_shards):
        """Bulk store == the same scalar stores (last write per key wins)."""
        bulk = ValueCache(num_shards=num_shards)
        scalar = ValueCache(num_shards=num_shards)
        bulk.store_many(entries)
        for frame_key, graph_id, op_id, out_idx, value in entries:
            scalar.store(frame_key, graph_id, op_id, out_idx, value)
        assert bulk.stores == scalar.stores == len(entries)
        assert len(bulk) == len(scalar)
        keys = [entry[:4] for entry in entries]
        assert bulk.lookup_many(keys) == [scalar.lookup(*k) for k in keys]

    @SETTINGS
    @given(entries=st.lists(entry_strategy, min_size=1, max_size=40,
                            unique_by=lambda e: e[:4]))
    def test_lookup_many_preserves_key_order(self, entries):
        cache = ValueCache()
        cache.store_many(entries)
        keys = [entry[:4] for entry in entries]
        values = cache.lookup_many(list(reversed(keys)))
        assert values == [entry[4] for entry in reversed(entries)]
        assert cache.lookups == len(keys)

    def test_lookup_many_miss_raises_the_engine_error(self):
        cache = ValueCache()
        cache.store((1,), 0, 0, 0, "x")
        with pytest.raises(KeyError, match="record=True"):
            cache.lookup_many([((1,), 0, 0, 0), ((2,), 0, 0, 0)])

    def test_bulk_apis_accept_ndarray_values(self):
        cache = ValueCache()
        value = np.arange(12.0).reshape(3, 4)
        cache.store_many([((ROOT_KEY), 1, 2, 0, value)])
        (got,) = cache.lookup_many([(ROOT_KEY, 1, 2, 0)])
        assert got is value  # stored by reference, like the scalar path


class TestConcurrentFrames:
    """Bulk traffic from many threads (stand-ins for engine workers)."""

    @pytest.mark.timeout(60)
    def test_concurrent_bulk_stores_and_lookups(self):
        cache = ValueCache()
        n_threads, per_thread = 8, 40
        errors = []

        def frame_worker(tid):
            # each "frame" stores its own keys (engine frames never collide
            # on keys — the paper's uniqueness argument), then reads them
            # back in bulk while other frames churn their shards
            try:
                key = child_key(ROOT_KEY, tid)
                entries = [(child_key(key, i), 0, i, 0, (tid, i))
                           for i in range(per_thread)]
                cache.store_many(entries)
                got = cache.lookup_many([e[:4] for e in entries])
                assert got == [(tid, i) for i in range(per_thread)]
                # scalar reads see bulk-stored values too
                for i in range(0, per_thread, 7):
                    assert cache.lookup(child_key(key, i), 0, i, 0) == (tid, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=frame_worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.stores == n_threads * per_thread
        assert len(cache) == n_threads * per_thread

    @pytest.mark.timeout(60)
    def test_concurrent_mixed_scalar_and_bulk(self):
        """Interleaved scalar/bulk traffic keeps counters and table exact."""
        cache = ValueCache(num_shards=4)
        barrier = threading.Barrier(6)
        errors = []

        def scalar_frames(tid):
            try:
                barrier.wait()
                for i in range(50):
                    cache.store((tid, i), 1, i, 0, i * tid)
                for i in range(50):
                    assert cache.lookup((tid, i), 1, i, 0) == i * tid
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def bulk_frames(tid):
            try:
                barrier.wait()
                entries = [((tid, i), 1, i, 0, i * tid) for i in range(50)]
                cache.store_many(entries)
                assert (cache.lookup_many([e[:4] for e in entries])
                        == [i * tid for i in range(50)])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = ([threading.Thread(target=scalar_frames, args=(t,))
                    for t in range(3)]
                   + [threading.Thread(target=bulk_frames, args=(t,))
                      for t in range(3, 6)])
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.stores == 6 * 50
        assert cache.lookups == 6 * 50


class TestShardingInvariants:
    @SETTINGS
    @given(entries=st.lists(entry_strategy, min_size=1, max_size=40,
                            unique_by=lambda e: e[:4]),
           shards_a=st.integers(1, 8), shards_b=st.integers(9, 64))
    def test_shard_count_is_invisible(self, entries, shards_a, shards_b):
        """Contents and counters do not depend on the shard count."""
        a, b = ValueCache(shards_a), ValueCache(shards_b)
        for cache in (a, b):
            cache.store_many(entries)
        keys = [e[:4] for e in entries]
        assert a.lookup_many(keys) == b.lookup_many(keys)
        assert len(a) == len(b) == len(entries)

    def test_clear_empties_every_shard(self):
        cache = ValueCache()
        cache.store_many([((i,), 0, i, 0, i) for i in range(64)])
        cache.store_meta(("m",), 3)
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(KeyError):
            cache.lookup_meta(("m",))
