"""Tests for cond / while_loop, including gradients through them."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.subgraph import SubGraphError
from tests.conftest import run


class TestCond:
    def test_takes_true_branch(self, graph, runtime):
        out = ops.cond(ops.constant(True),
                       lambda: ops.constant(1.0),
                       lambda: ops.constant(2.0))
        assert repro.Session(graph, runtime).run(out) == pytest.approx(1.0)

    def test_takes_false_branch(self, graph, runtime):
        out = ops.cond(ops.constant(False),
                       lambda: ops.constant(1.0),
                       lambda: ops.constant(2.0))
        assert repro.Session(graph, runtime).run(out) == pytest.approx(2.0)

    def test_only_chosen_branch_executes(self, graph, runtime):
        # the false branch would divide by zero if executed
        x = ops.constant(1.0)
        zero = ops.constant(0.0)
        out = ops.cond(ops.constant(True),
                       lambda: ops.identity(x),
                       lambda: ops.divide(ops.log(zero), zero))
        value = repro.Session(graph, runtime).run(out)
        assert np.isfinite(value)

    def test_captures_outer_values(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        out = ops.cond(ops.greater(x, 0.0),
                       lambda: ops.multiply(x, 10.0),
                       lambda: ops.negative(x))
        sess = repro.Session(graph, runtime)
        assert sess.run(out, {x: 2.0}) == pytest.approx(20.0)
        assert sess.run(out, {x: -3.0}) == pytest.approx(3.0)

    def test_multiple_outputs(self, graph, runtime):
        a, b = ops.cond(ops.constant(True),
                        lambda: (ops.constant(1.0), ops.constant(2.0)),
                        lambda: (ops.constant(3.0), ops.constant(4.0)))
        sess = repro.Session(graph, runtime)
        assert sess.run([a, b]) == [1.0, 2.0]

    def test_mismatched_output_count_raises(self, graph):
        with pytest.raises(SubGraphError, match="output count"):
            ops.cond(ops.constant(True),
                     lambda: ops.constant(1.0),
                     lambda: (ops.constant(1.0), ops.constant(2.0)))

    def test_mismatched_dtype_raises(self, graph):
        with pytest.raises(SubGraphError, match="dtype"):
            ops.cond(ops.constant(True),
                     lambda: ops.constant(1.0),
                     lambda: ops.constant(1))

    def test_non_bool_predicate_raises(self, graph):
        with pytest.raises(SubGraphError, match="bool"):
            ops.cond(ops.constant(1),
                     lambda: ops.constant(1.0),
                     lambda: ops.constant(2.0))

    def test_nested_cond(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        out = ops.cond(
            ops.greater(x, 0.0),
            lambda: ops.cond(ops.greater(x, 10.0),
                             lambda: ops.constant(2.0),
                             lambda: ops.constant(1.0)),
            lambda: ops.constant(0.0))
        sess = repro.Session(graph, runtime)
        assert sess.run(out, {x: 20.0}) == pytest.approx(2.0)
        assert sess.run(out, {x: 5.0}) == pytest.approx(1.0)
        assert sess.run(out, {x: -1.0}) == pytest.approx(0.0)

    def test_cond_gradient_through_taken_branch(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        out = ops.cond(ops.greater(x, 0.0),
                       lambda: ops.multiply(x, x),
                       lambda: ops.multiply(x, -3.0))
        grads, updates = repro.gradients(out, [x])
        sess = repro.Session(graph, runtime, record=True)
        assert sess.run(grads[0], {x: 2.0}) == pytest.approx(4.0)
        assert sess.run(grads[0], {x: -2.0}) == pytest.approx(-3.0)

    def test_cond_gradient_zero_for_untaken_capture(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        y = ops.placeholder(repro.float32, ())
        out = ops.cond(ops.constant(True),
                       lambda: ops.multiply(x, 2.0),
                       lambda: ops.multiply(y, 5.0))
        grads, _ = repro.gradients(out, [x, y])
        sess = repro.Session(graph, runtime, record=True)
        gx, gy = sess.run([grads[0], grads[1]], {x: 1.0, y: 1.0})
        assert gx == pytest.approx(2.0)
        assert gy == pytest.approx(0.0)


class TestWhileLoop:
    def test_counter(self, graph, runtime):
        i = ops.while_loop(lambda i: ops.less(i, 7),
                           lambda i: ops.add(i, 1),
                           [ops.constant(0)])
        assert repro.Session(graph, runtime).run(i) == 7

    def test_zero_iterations(self, graph, runtime):
        i = ops.while_loop(lambda i: ops.less(i, 0),
                           lambda i: ops.add(i, 1),
                           [ops.constant(5)])
        assert repro.Session(graph, runtime).run(i) == 5

    def test_multiple_vars(self, graph, runtime):
        i, total = ops.while_loop(
            lambda i, s: ops.less(i, 5),
            lambda i, s: (ops.add(i, 1),
                          ops.add(s, ops.cast(i, repro.float32))),
            [ops.constant(0), ops.constant(0.0)])
        assert repro.Session(graph, runtime).run(total) == pytest.approx(10.0)

    def test_captures(self, graph, runtime):
        step = ops.placeholder(repro.float32, ())
        _, total = ops.while_loop(
            lambda i, s: ops.less(i, 4),
            lambda i, s: (ops.add(i, 1), ops.add(s, step)),
            [ops.constant(0), ops.constant(0.0)])
        sess = repro.Session(graph, runtime)
        assert sess.run(total, {step: 2.5}) == pytest.approx(10.0)

    def test_max_iters_guard(self, graph, runtime):
        i = ops.while_loop(lambda i: ops.constant(True),
                           lambda i: ops.add(i, 1),
                           [ops.constant(0)], max_iters=10)
        with pytest.raises(repro.EngineError, match="max_iters"):
            repro.Session(graph, runtime).run(i)

    def test_var_count_mismatch_raises(self, graph):
        with pytest.raises(SubGraphError, match="loop variables"):
            ops.while_loop(lambda i, s: ops.less(i, 1),
                           lambda i, s: ops.add(i, 1),
                           [ops.constant(0), ops.constant(0.0)])

    def test_dtype_change_raises(self, graph):
        with pytest.raises(SubGraphError, match="dtype"):
            ops.while_loop(lambda i: ops.less(i, 1),
                           lambda i: ops.cast(i, repro.float32),
                           [ops.constant(0)])

    def test_cond_inside_loop(self, graph, runtime):
        # sum of even numbers < 10
        def body(i, s):
            is_even = ops.equal(ops.subtract(i, ops.multiply(
                ops.cast(ops.cast(i, repro.float32) * 0.5, repro.int32), 2)),
                0)
            add = ops.cond(is_even,
                           lambda: ops.cast(i, repro.float32),
                           lambda: ops.constant(0.0))
            return ops.add(i, 1), ops.add(s, add)

        _, total = ops.while_loop(lambda i, s: ops.less(i, 10), body,
                                  [ops.constant(0), ops.constant(0.0)])
        assert repro.Session(graph, runtime).run(total) == pytest.approx(20.0)


class TestWhileLoopGradients:
    def test_power_gradient(self, graph, runtime):
        # y = x^4 via loop; dy/dx = 4 x^3
        x = ops.placeholder(repro.float32, ())
        _, y = ops.while_loop(lambda i, p: ops.less(i, 4),
                              lambda i, p: (ops.add(i, 1),
                                            ops.multiply(p, x)),
                              [ops.constant(0), ops.constant(1.0)])
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        assert sess.run(grads[0], {x: 1.5}) == pytest.approx(4 * 1.5 ** 3,
                                                             rel=1e-4)

    def test_sum_gradient_flows_to_capture(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        _, total = ops.while_loop(
            lambda i, s: ops.less(i, 6),
            lambda i, s: (ops.add(i, 1), ops.add(s, ops.square(x))),
            [ops.constant(0), ops.constant(0.0)])
        grads, _ = repro.gradients(total, [x])
        sess = repro.Session(graph, runtime, record=True)
        # d/dx (6 x^2) = 12 x
        assert sess.run(grads[0], {x: 2.0}) == pytest.approx(24.0, rel=1e-4)

    def test_zero_iteration_gradient_is_passthrough(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        _, y = ops.while_loop(lambda i, s: ops.less(i, 0),
                              lambda i, s: (ops.add(i, 1),
                                            ops.multiply(s, 2.0)),
                              [ops.constant(0), x])
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        assert sess.run(grads[0], {x: 3.0}) == pytest.approx(1.0)

    def test_variable_gradient_accumulates_over_iterations(self, graph,
                                                           runtime):
        w = repro.Variable("loop_w", np.float32(2.0), runtime=runtime)
        _, total = ops.while_loop(
            lambda i, s: ops.less(i, 5),
            lambda i, s: (ops.add(i, 1), ops.add(s, w.read())),
            [ops.constant(0), ops.constant(0.0)])
        _, updates = repro.gradients(total, [])
        sess = repro.Session(graph, runtime, record=True)
        sess.run([total] + [op.outputs[-1] for op in updates])
        assert runtime.accumulators.read("loop_w") == pytest.approx(5.0)

    def test_gradient_requires_record_mode(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        _, y = ops.while_loop(lambda i, p: ops.less(i, 2),
                              lambda i, p: (ops.add(i, 1),
                                            ops.multiply(p, x)),
                              [ops.constant(0), ops.constant(1.0)])
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=False)
        with pytest.raises(repro.EngineError):
            sess.run(grads[0], {x: 1.0})


class TestTensorArray:
    def test_write_read_roundtrip(self, graph, runtime):
        ta = ops.ta_create(3, (2,))
        ta = ops.ta_write(ta, 1, ops.constant([5.0, 6.0]))
        out = ops.ta_read(ta, 1, repro.float32, (2,))
        np.testing.assert_allclose(repro.Session(graph, runtime).run(out),
                                   [5.0, 6.0])

    def test_read_unwritten_returns_zeros(self, graph, runtime):
        ta = ops.ta_create(2, (3,))
        out = ops.ta_read(ta, 0, repro.float32, (3,))
        np.testing.assert_allclose(repro.Session(graph, runtime).run(out),
                                   np.zeros(3))

    def test_double_write_raises(self, graph, runtime):
        ta = ops.ta_create(2, ())
        ta = ops.ta_write(ta, 0, ops.constant(1.0))
        ta = ops.ta_write(ta, 0, ops.constant(2.0))
        out = ops.ta_read(ta, 0, repro.float32, ())
        with pytest.raises(repro.EngineError, match="write-once"):
            repro.Session(graph, runtime).run(out)

    def test_out_of_range_raises(self, graph, runtime):
        ta = ops.ta_create(2, ())
        out = ops.ta_read(ta, 5, repro.float32, ())
        with pytest.raises(repro.EngineError, match="out of range"):
            repro.Session(graph, runtime).run(out)

    def test_size(self, graph, runtime):
        ta = ops.ta_create(7, ())
        assert repro.Session(graph, runtime).run(ops.ta_size(ta)) == 7

    def test_gradient_through_write_read(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        ta = ops.ta_create(2, ())
        ta = ops.ta_write(ta, 0, ops.multiply(x, 3.0))
        y = ops.square(ops.ta_read(ta, 0, repro.float32, ()))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        # y = (3x)^2, dy/dx = 18x
        assert sess.run(grads[0], {x: 2.0}) == pytest.approx(36.0)

    def test_multiple_reads_accumulate_gradient(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        ta = ops.ta_create(1, ())
        ta = ops.ta_write(ta, 0, x)
        read1 = ops.ta_read(ta, 0, repro.float32, ())
        read2 = ops.ta_read(ta, 0, repro.float32, ())
        y = ops.add(read1, ops.multiply(read2, 2.0))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        assert sess.run(grads[0], {x: 1.0}) == pytest.approx(3.0)

    def test_gather_rows(self, graph, runtime):
        ta = ops.ta_create(2, (2, 3))
        ta = ops.ta_write(ta, 0, ops.constant(np.zeros((2, 3), np.float32)))
        ta = ops.ta_write(ta, 1, ops.constant(np.ones((2, 3), np.float32)))
        idx = ops.constant(np.array([1, 0], dtype=np.int32))
        out = ops.ta_gather_rows(ta, idx, repro.float32, (2, 3))
        result = repro.Session(graph, runtime).run(out)
        np.testing.assert_allclose(result, [[1, 1, 1], [0, 0, 0]])

    def test_gather_rows_gradient(self, graph, runtime):
        x = ops.placeholder(repro.float32, (2, 2))
        ta = ops.ta_create(1, (2, 2))
        ta = ops.ta_write(ta, 0, x)
        idx = ops.constant(np.array([0, 0], dtype=np.int32))
        y = ops.reduce_sum(ops.square(
            ops.ta_gather_rows(ta, idx, repro.float32, (2, 2))))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        x0 = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        np.testing.assert_allclose(sess.run(grads[0], {x: x0}), 2 * x0)

    def test_combine(self, graph, runtime):
        a = ops.ta_create(2, ())
        a = ops.ta_write(a, 0, ops.constant(1.0))
        b = ops.ta_create(2, ())
        b = ops.ta_write(b, 0, ops.constant(2.0))
        b = ops.ta_write(b, 1, ops.constant(5.0))
        combined = ops.ta_combine(a, b)
        sess = repro.Session(graph, runtime)
        assert sess.run(ops.ta_read(combined, 0, repro.float32, ())) == 3.0
        assert sess.run(ops.ta_read(combined, 1, repro.float32, ())) == 5.0
