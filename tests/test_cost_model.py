"""Unit tests for the virtual-time cost models."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.runtime import cost_model as _cost_model
from repro.runtime.cost_model import (CostModel, GpuCostParams, client_eager,
                                      gpu_profile, unit_cost)


def cpu_model() -> CostModel:
    # wrapper: the library name "testbed_cpu" would be collected by pytest
    return _cost_model.testbed_cpu()


def _op_of(op_type, *input_arrays):
    graph = repro.Graph("cm")
    with graph.as_default():
        tensors = [ops.constant(a) for a in input_arrays]
        if op_type == "MatMul":
            out = ops.matmul(*tensors)
        elif op_type == "Add":
            out = ops.add(*tensors)
        elif op_type == "Identity":
            out = ops.identity(*tensors)
        else:
            raise ValueError(op_type)
    return out.op


class TestCpuModel:
    def test_matmul_cost_scales_with_flops(self):
        model = cpu_model()
        small = _op_of("MatMul", np.zeros((4, 4), np.float32),
                       np.zeros((4, 4), np.float32))
        big = _op_of("MatMul", np.zeros((256, 256), np.float32),
                     np.zeros((256, 256), np.float32))
        c_small = model.op_cost(small, [np.zeros((4, 4), np.float32)] * 2)
        c_big = model.op_cost(big, [np.zeros((256, 256), np.float32)] * 2)
        assert c_big > c_small

    def test_intra_op_parallelism_caps_large_kernels(self):
        model = cpu_model()
        a = np.zeros((512, 512), np.float32)
        op = _op_of("MatMul", a, a)
        parallel_cost = model.op_cost(op, [a, a])
        serial = CostModel(intra_op_parallelism=1.0)
        serial_cost = serial.op_cost(op, [a, a])
        assert parallel_cost < serial_cost

    def test_small_matmul_not_parallelized(self):
        model = cpu_model()
        a = np.zeros((2, 2), np.float32)
        op = _op_of("MatMul", a, a)
        # below the grain: dominated by per-op overhead
        assert model.op_cost(op, [a, a]) == pytest.approx(
            model.op_overhead, rel=0.05)

    def test_trivial_cheaper_than_elementwise(self):
        model = cpu_model()
        a = np.zeros(4, np.float32)
        ident = _op_of("Identity", a)
        add = _op_of("Add", a, a)
        assert model.op_cost(ident, [a]) < model.op_cost(add, [a, a])

    def test_async_overheads_ordered(self):
        model = cpu_model()

        class Fake:
            def __init__(self, op_type):
                self.op_type = op_type

        invoke = model.async_overhead(Fake("Invoke"))
        cond = model.async_overhead(Fake("Cond"))
        assert invoke > cond > 0
        assert model.async_overhead(Fake("InvokeGrad")) == invoke

    def test_loop_step_overhead_grows_with_vars(self):
        model = cpu_model()
        assert model.loop_step_overhead(5) > model.loop_step_overhead(1)

    def test_cache_write_cost_scales_with_bytes(self):
        model = cpu_model()
        small = model.cache_write_cost(np.zeros(4, np.float32))
        large = model.cache_write_cost(np.zeros(1_000_000, np.float32))
        assert large > small >= model.cache_entry_cost

    def test_opaque_values_charged_as_handles(self):
        model = cpu_model()
        handle_cost = model.cache_write_cost(object())
        assert handle_cost < model.cache_write_cost(
            np.zeros(10_000, np.float32))


class TestBulkCacheCosts:
    def test_bulk_lookup_beats_serialized_lookups(self):
        """The point of the batched CacheLookup: one bulk round-trip costs
        less than N serialized per-op lookups."""
        model = cpu_model()
        n = 16
        bulk = model.bulk_cache_lookup_cost([[] for _ in range(n)])
        serial = n * model.op_cost(
            type("Op", (), {"op_type": "CacheLookup"})(), [])
        assert bulk < serial
        assert bulk > model.cache_lookup_cost  # members are not free

    def test_bulk_write_beats_serialized_writes(self):
        model = cpu_model()
        values = [np.zeros(64, np.float32)] * 16
        bulk = model.bulk_cache_write_cost(values)
        serial = sum(model.cache_write_cost(v) for v in values)
        assert bulk < serial
        # byte traffic is conserved: both paths move the same data
        assert bulk > 16 * 64 * 4 / model.cache_bytes_rate

    def test_bulk_write_scales_with_bytes(self):
        model = cpu_model()
        small = model.bulk_cache_write_cost([np.zeros(4, np.float32)] * 4)
        large = model.bulk_cache_write_cost(
            [np.zeros(100_000, np.float32)] * 4)
        assert large > small

    def test_async_batch_overhead_amortizes_invoke_cost(self):
        model = cpu_model()

        class Fake:
            op_type = "InvokeGrad"

        n = 8
        fused = model.async_batch_overhead(Fake(), n)
        serial = n * model.async_overhead(Fake())
        assert fused < serial
        assert fused > model.async_overhead(Fake())  # members still pay


class TestCalibration:
    def test_measured_member_cost_is_sane(self):
        from repro.runtime.cost_model import calibrate_batch_member_cost
        measured = calibrate_batch_member_cost(widths=(4, 16, 64), repeats=5)
        # within the clamp band, i.e. the same order of magnitude as the
        # modelled constant (and far below the per-op overhead it replaces)
        assert 0.05e-6 <= measured <= 5e-6
        assert measured < cpu_model().op_overhead

    def test_testbed_cpu_calibrate_memoizes(self):
        from repro.runtime import cost_model as cm
        cm._CALIBRATED_MEMBER_COST = None
        a = cm.testbed_cpu(calibrate=True)
        first = a.batch_member_cost
        b = cm.testbed_cpu(calibrate=True)
        assert b.batch_member_cost == first  # measured once per process
        assert cm.testbed_cpu().batch_member_cost == 0.6e-6  # default fixed
        cm._CALIBRATED_MEMBER_COST = None


class TestProfiles:
    def test_client_eager_has_no_scheduler_costs(self):
        model = client_eager()
        assert model.dispatch_cost == 0.0
        assert model.invoke_overhead == 0.0

    def test_gpu_kernel_cost(self):
        gpu = gpu_profile()
        assert gpu.kernel_cost(0.0) == pytest.approx(gpu.kernel_launch)
        assert gpu.kernel_cost(1e9) > gpu.kernel_cost(1e3)

    def test_gpu_much_faster_arithmetic_than_cpu(self):
        assert gpu_profile().flops_rate > 10 * cpu_model().flops_rate

    def test_unit_cost_is_flat(self):
        model = unit_cost()
        a = np.zeros((64, 64), np.float32)
        op = _op_of("MatMul", a, a)
        assert model.op_cost(op, [a, a]) == 1.0
        assert model.cache_write_cost(a) == 0.0


class TestCostKindConsistency:
    def test_op_cost_and_batch_cost_share_one_flops_model(self):
        """op_cost inlines the flops estimate that batch_cost reaches via
        _flops; the two must stay in lockstep.  For a one-member bucket
        the fused cost differs from the scalar cost by exactly the
        per-member bookkeeping term whenever the work terms agree — for
        every cost kind and for both the sub- and super-grain matmul
        regimes (the intra-op parallelism discount applies identically).
        """
        from repro.graph.registry import op_def
        model = cpu_model()
        cases = [
            ("elementwise", _op_of("Add", np.ones((8, 8), np.float32),
                                   np.ones((8, 8), np.float32)),
             [np.ones((8, 8), np.float32)] * 2),
            ("matmul small", _op_of("MatMul", np.ones((4, 4), np.float32),
                                    np.ones((4, 4), np.float32)),
             [np.ones((4, 4), np.float32)] * 2),
            ("matmul large", _op_of("MatMul",
                                    np.ones((256, 256), np.float32),
                                    np.ones((256, 256), np.float32)),
             [np.ones((256, 256), np.float32)] * 2),
        ]
        graph = repro.Graph("cmp")
        with graph.as_default():
            cmp_op = ops.less_equal(ops.constant(1.0), ops.constant(2.0)).op
        cases.append(("trivial", cmp_op, [np.float32(1.0), np.float32(2.0)]))
        for label, op, inputs in cases:
            kind = op_def(op.op_type).meta.get("cost", "elementwise")
            single = model.op_cost(op, inputs, kind)
            assert single == model.op_cost(op, inputs), label  # kind lookup
            fused = model.batch_cost([op], [inputs], kind)
            assert fused - single == pytest.approx(
                model.batch_member_cost, abs=1e-12), label


class TestStats:
    def test_note_and_merge(self):
        from repro.runtime.stats import RunStats
        a = RunStats()
        a.note_op("MatMul", 0.5)
        a.virtual_time = 1.0
        b = RunStats()
        b.note_op("MatMul", 0.25)
        b.note_op("Add", 0.1)
        b.virtual_time = 2.0
        b.max_concurrency = 4
        a.merge(b)
        assert a.virtual_time == pytest.approx(3.0)
        assert a.per_type_count["MatMul"] == 2
        assert a.per_type_time["MatMul"] == pytest.approx(0.75)
        assert a.max_concurrency == 4

    def test_summary_renders(self):
        from repro.runtime.stats import RunStats
        stats = RunStats()
        stats.note_op("Add", 0.001)
        text = stats.summary()
        assert "Add" in text
        assert "ops=1" in text
