"""Tests for trees, vocabulary, treebank generation and batching."""

import numpy as np
import pytest

from repro.data import (SyntheticTreebank, Tree, TreeNode, TreebankConfig,
                        Vocabulary, WordKind, batch_trees, build_shape,
                        iterate_batches, label_tree, make_treebank)


def small_bank(**overrides):
    defaults = dict(num_train=20, num_val=8, vocab_size=60, max_words=30,
                    mean_log_words=2.3, seed=11)
    defaults.update(overrides)
    return make_treebank(**defaults)


class TestTreeNode:
    def test_leaf_properties(self):
        leaf = TreeNode(word=3)
        assert leaf.is_leaf
        assert leaf.size() == 1
        assert leaf.depth() == 1

    def test_internal_properties(self):
        node = TreeNode(left=TreeNode(word=0), right=TreeNode(word=1))
        assert not node.is_leaf
        assert node.size() == 3
        assert node.num_leaves() == 2
        assert node.depth() == 2

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            TreeNode()
        with pytest.raises(ValueError):
            TreeNode(word=1, left=TreeNode(word=0), right=TreeNode(word=2))

    def test_post_order_children_first(self):
        left = TreeNode(word=0)
        right = TreeNode(word=1)
        root = TreeNode(left=left, right=right)
        order = list(root.post_order())
        assert order.index(left) < order.index(root)
        assert order.index(right) < order.index(root)


class TestTreeArrays:
    def test_to_arrays_topological(self):
        bank = small_bank()
        for tree in bank.train[:10]:
            arrays = tree.to_arrays()
            for i in range(arrays.num_nodes):
                if not arrays.is_leaf[i]:
                    l, r = arrays.children[i]
                    assert l < i and r < i, "children must precede parents"

    def test_root_is_last(self):
        bank = small_bank()
        arrays = bank.train[0].to_arrays()
        assert arrays.root == arrays.num_nodes - 1

    def test_node_count_identity(self):
        bank = small_bank()
        for tree in bank.train[:5]:
            arrays = tree.to_arrays()
            assert arrays.num_nodes == tree.num_nodes
            assert arrays.is_leaf.sum() == tree.num_leaves
            assert tree.num_nodes == 2 * tree.num_leaves - 1

    def test_labels_match_nodes(self):
        bank = small_bank()
        tree = bank.train[0]
        arrays = tree.to_arrays()
        assert arrays.labels[arrays.root] == tree.label


class TestVocabulary:
    def test_kinds_partition(self):
        vocab = Vocabulary.build(100, np.random.default_rng(0))
        assert len(vocab.kinds) == 100
        assert (vocab.kinds == WordKind.NEGATOR).sum() >= 1
        assert (vocab.kinds == WordKind.INTENSIFIER).sum() >= 1
        assert (vocab.kinds == WordKind.CONTENT).sum() > 50

    def test_content_has_polarity_others_zero(self):
        vocab = Vocabulary.build(100, np.random.default_rng(1))
        content = vocab.kinds == WordKind.CONTENT
        assert np.all(vocab.polarity[content] != 0)
        assert np.all(vocab.polarity[~content] == 0)

    def test_sample_word_by_kind(self):
        vocab = Vocabulary.build(50, np.random.default_rng(2))
        rng = np.random.default_rng(3)
        word = vocab.sample_word(rng, WordKind.NEGATOR)
        assert vocab.is_negator(word)


class TestLabeling:
    def test_leaf_score_is_polarity(self):
        vocab = Vocabulary.build(50, np.random.default_rng(4))
        content = int(np.flatnonzero(vocab.kinds == WordKind.CONTENT)[0])
        leaf = TreeNode(word=content)
        label_tree(leaf, vocab)
        assert leaf.score == vocab.polarity[content]
        assert leaf.label == int(leaf.score > 0)

    def test_sum_composition(self):
        vocab = Vocabulary.build(50, np.random.default_rng(5))
        content = np.flatnonzero(vocab.kinds == WordKind.CONTENT)[:2]
        root = TreeNode(left=TreeNode(word=int(content[0])),
                        right=TreeNode(word=int(content[1])))
        label_tree(root, vocab)
        expected = vocab.polarity[content[0]] + vocab.polarity[content[1]]
        assert root.score == pytest.approx(expected)

    def test_negator_flips_right_phrase(self):
        vocab = Vocabulary.build(50, np.random.default_rng(6))
        neg = vocab.sample_word(np.random.default_rng(7), WordKind.NEGATOR)
        pos_words = np.flatnonzero((vocab.kinds == WordKind.CONTENT)
                                   & (vocab.polarity > 0))
        root = TreeNode(left=TreeNode(word=int(neg)),
                        right=TreeNode(word=int(pos_words[0])))
        label_tree(root, vocab)
        assert root.score < 0
        assert root.label == 0

    def test_intensifier_amplifies(self):
        vocab = Vocabulary.build(50, np.random.default_rng(8))
        amp = vocab.sample_word(np.random.default_rng(9),
                                WordKind.INTENSIFIER)
        pos_words = np.flatnonzero((vocab.kinds == WordKind.CONTENT)
                                   & (vocab.polarity > 0))
        root = TreeNode(left=TreeNode(word=int(amp)),
                        right=TreeNode(word=int(pos_words[0])))
        label_tree(root, vocab)
        assert root.score == pytest.approx(
            1.5 * vocab.polarity[pos_words[0]])


class TestShapes:
    WORDS = list(range(16))

    def test_balanced_is_minimal_depth(self):
        rng = np.random.default_rng(0)
        root = build_shape(self.WORDS, "balanced", rng)
        assert root.depth() == 5  # 16 leaves -> depth log2(16)+1

    def test_linear_is_maximal_depth(self):
        rng = np.random.default_rng(0)
        root = build_shape(self.WORDS, "linear", rng)
        assert root.depth() == len(self.WORDS)

    def test_moderate_between(self):
        rng = np.random.default_rng(0)
        balanced = build_shape(self.WORDS, "balanced", rng).depth()
        moderate = build_shape(self.WORDS, "moderate", rng).depth()
        linear = build_shape(self.WORDS, "linear", rng).depth()
        assert balanced <= moderate <= linear

    def test_all_shapes_preserve_words(self):
        rng = np.random.default_rng(1)
        for shape in ("natural", "balanced", "moderate", "linear"):
            root = build_shape(self.WORDS, shape, rng)
            assert [leaf.word for leaf in root.leaves()] == self.WORDS

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError, match="unknown tree shape"):
            build_shape(self.WORDS, "zigzag", np.random.default_rng(0))

    def test_balancedness_metric_ordering(self):
        bank = small_bank()
        balanced = bank.with_shape("balanced")
        linear = bank.with_shape("linear")
        b_scores = [t.balancedness() for t in balanced.train]
        l_scores = [t.balancedness() for t in linear.train]
        assert np.mean(b_scores) > np.mean(l_scores)


class TestTreebank:
    def test_deterministic_generation(self):
        a = small_bank()
        b = small_bank()
        assert [t.words() for t in a.train] == [t.words() for t in b.train]
        assert [t.label for t in a.train] == [t.label for t in b.train]

    def test_sizes(self):
        bank = small_bank()
        assert len(bank.train) == 20
        assert len(bank.val) == 8

    def test_length_bounds(self):
        bank = small_bank(min_words=4, max_words=30)
        for tree in bank.train + bank.val:
            assert 4 <= tree.num_words <= 30

    def test_label_balance_not_degenerate(self):
        bank = make_treebank(num_train=200, num_val=0, seed=3)
        labels = [t.label for t in bank.train]
        positive = np.mean(labels)
        assert 0.2 < positive < 0.8

    def test_with_shape_keeps_words(self):
        bank = small_bank()
        linear = bank.with_shape("linear")
        for a, b in zip(bank.train, linear.train):
            assert a.words() == b.words()

    def test_trees_of_length(self):
        bank = small_bank()
        trees = bank.trees_of_length(40, 3)
        assert len(trees) == 3
        assert all(t.num_words == 40 for t in trees)


class TestBatching:
    def test_batch_shapes(self):
        bank = small_bank()
        batch = batch_trees(bank.train[:4])
        n = batch.max_nodes
        assert batch.words.shape == (4, n)
        assert batch.children.shape == (4, n, 2)
        assert batch.is_leaf.shape == (4, n)
        assert batch.labels.shape == (4, n)
        assert batch.n_nodes.shape == (4,)
        assert batch.root.shape == (4,)

    def test_padding_is_leaf(self):
        bank = small_bank()
        batch = batch_trees(bank.train[:4])
        for b in range(4):
            n = batch.n_nodes[b]
            assert np.all(batch.is_leaf[b, n:])

    def test_root_labels(self):
        bank = small_bank()
        trees = bank.train[:3]
        batch = batch_trees(trees)
        np.testing.assert_array_equal(batch.root_labels(),
                                      [t.label for t in trees])

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            batch_trees([])

    def test_iterate_batches_drop_remainder(self):
        bank = small_bank()
        batches = list(iterate_batches(bank.train, 8, drop_remainder=True))
        assert all(b.size == 8 for b in batches)
        assert len(batches) == len(bank.train) // 8

    def test_iterate_batches_shuffle_deterministic(self):
        bank = small_bank()
        a = [b.n_nodes.tolist() for b in iterate_batches(
            bank.train, 4, shuffle=True, rng=np.random.default_rng(5))]
        b = [b.n_nodes.tolist() for b in iterate_batches(
            bank.train, 4, shuffle=True, rng=np.random.default_rng(5))]
        assert a == b

    def test_total_nodes(self):
        bank = small_bank()
        trees = bank.train[:5]
        batch = batch_trees(trees)
        assert batch.total_nodes == sum(t.num_nodes for t in trees)
