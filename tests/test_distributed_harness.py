"""Tests for the distributed simulator and the evaluation harness."""

import numpy as np
import pytest

import repro
from repro.data import batch_trees, make_treebank
from repro.distributed import CommunicationModel, DataParallelCluster
from repro.harness import (RunnerConfig, evaluate_accuracy, format_table,
                           make_runner, measure_latency_curve,
                           measure_throughput, run_convergence, save_results)
from repro.models import ModelConfig, TreeRNNSentiment
from repro.nn import Adagrad, Trainer


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=24, num_val=8, vocab_size=40,
                         max_words=14, mean_log_words=2.0, seed=13)


CONFIG = ModelConfig(vocab_size=40, hidden=8, embed_dim=8)


def fresh_model():
    return TreeRNNSentiment(CONFIG, repro.Runtime())


class TestRunners:
    @pytest.mark.parametrize("kind", ["Recursive", "Iterative", "Unrolling",
                                      "Folding"])
    def test_runner_train_and_infer(self, bank, kind):
        model = fresh_model()
        runner = make_runner(kind, model, 2,
                             RunnerConfig(num_workers=4))
        batch = batch_trees(bank.train[:2])
        loss, t_train = runner.train_step(batch)
        logits, t_infer = runner.infer_step(batch)
        assert np.isfinite(loss)
        assert logits.shape == (2, 2)
        assert t_train > 0 and t_infer > 0

    def test_unknown_runner_raises(self):
        with pytest.raises(ValueError, match="unknown runner"):
            make_runner("Quantum", fresh_model(), 1)

    def test_all_runners_agree_on_first_loss(self, bank):
        batch = batch_trees(bank.train[:2])
        losses = []
        for kind in ("Recursive", "Iterative", "Unrolling", "Folding"):
            model = fresh_model()
            runner = make_runner(kind, model, 2,
                                 RunnerConfig(num_workers=4))
            loss, _ = runner.train_step(batch)
            losses.append(loss)
        assert np.allclose(losses, losses[0], atol=1e-4)


class TestThroughputHarness:
    def test_measure_throughput(self, bank):
        runner = make_runner("Recursive", fresh_model(), 2,
                             RunnerConfig(num_workers=4))
        result = measure_throughput(runner, bank.train, 2, "infer",
                                    steps=2, warmup=1)
        assert result.throughput > 0
        assert result.instances == 4

    def test_latency_curve_monotone_in_length(self, bank):
        runner = make_runner("Iterative", fresh_model(), 1,
                             RunnerConfig(num_workers=4))
        trees = {8: bank.trees_of_length(8, 1),
                 24: bank.trees_of_length(24, 1)}
        curve = measure_latency_curve(runner, trees, "infer")
        assert curve[8] < curve[24]


class TestConvergenceHarness:
    def test_accuracy_evaluation(self, bank):
        runner = make_runner("Recursive", fresh_model(), 2,
                             RunnerConfig(num_workers=4), train=False)
        acc = evaluate_accuracy(runner, bank.val, 2)
        assert 0.0 <= acc <= 1.0

    def test_run_convergence_records_points(self, bank):
        runner = make_runner("Recursive", fresh_model(), 4,
                             RunnerConfig(num_workers=4, learning_rate=0.2))
        result = run_convergence(runner, bank.train[:8], bank.val[:4],
                                 batch_size=4, epochs=2)
        assert len(result.points) == 2
        assert result.points[1].virtual_time > result.points[0].virtual_time
        assert result.final_accuracy() >= 0.0

    def test_time_to_accuracy(self, bank):
        runner = make_runner("Recursive", fresh_model(), 4,
                             RunnerConfig(num_workers=4, learning_rate=0.3))
        result = run_convergence(runner, bank.train[:8], bank.val[:4],
                                 batch_size=4, epochs=2)
        impossible = result.time_to_accuracy(1.1)
        assert impossible is None


class TestDistributed:
    def test_shards_balanced(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(CONFIG, runtime)
        cluster = DataParallelCluster(model, 8, 4, Adagrad(0.05), runtime,
                                      session_kwargs={"num_workers": 4})
        shards = cluster.split(bank.train[:8])
        assert len(shards) == 4
        sizes = [s.total_nodes for s in shards]
        assert max(sizes) <= 2.2 * min(sizes)

    def test_step_returns_loss_and_time(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(CONFIG, runtime)
        cluster = DataParallelCluster(model, 4, 2, Adagrad(0.05), runtime,
                                      session_kwargs={"num_workers": 4})
        loss, step_time = cluster.train_step(bank.train[:4])
        assert np.isfinite(loss)
        assert step_time > 0

    def test_gradients_sum_across_shards(self, bank):
        """Cluster-accumulated grads equal the sum of per-shard grads."""
        trees = bank.train[:4]
        runtime = repro.Runtime()
        model = TreeRNNSentiment(CONFIG, runtime)
        cluster = DataParallelCluster(model, 4, 2, Adagrad(0.05), runtime,
                                      session_kwargs={"num_workers": 4})
        shards = cluster.split(trees)
        # manual: run each shard independently and sum
        runtime.accumulators.zero()
        expected = {}
        for shard in shards:
            feeds = cluster.built.feed_dict(shard)
            runtime.cache.clear()
            single = repro.Runtime()
            single.variables.restore(runtime.variables.snapshot())
            cluster.trainer.session.run(cluster.trainer._grad_fetches,
                                        feeds, record=True)
        for name in runtime.accumulators.names():
            expected[name] = np.array(runtime.accumulators.read(name))
        # cluster step from the same parameters
        snapshot = runtime.variables.snapshot()
        runtime.variables.restore(snapshot)
        runtime.accumulators.zero()
        for shard in shards:
            feeds = cluster.built.feed_dict(shard)
            runtime.cache.clear()
            cluster.trainer.session.run(cluster.trainer._grad_fetches,
                                        feeds, record=True)
        for name, value in expected.items():
            np.testing.assert_allclose(runtime.accumulators.read(name),
                                       value, rtol=1e-5)

    def test_more_machines_higher_throughput(self, bank):
        results = []
        for machines in (1, 4):
            runtime = repro.Runtime()
            model = TreeRNNSentiment(CONFIG, runtime)
            cluster = DataParallelCluster(model, 8, machines, Adagrad(0.05),
                                          runtime,
                                          session_kwargs={"num_workers": 8})
            results.append(cluster.throughput(bank.train, steps=1))
        assert results[1] > results[0] * 2

    def test_indivisible_batch_raises(self):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(CONFIG, runtime)
        with pytest.raises(ValueError, match="divide"):
            DataParallelCluster(model, 10, 4, Adagrad(0.05), runtime)

    def test_comm_model_costs(self):
        comm = CommunicationModel()
        fast = comm.round_trip(1000, 1)
        slow = comm.round_trip(10_000_000, 8)
        assert slow > fast > 0


class TestReporting:
    def test_format_table(self):
        table = format_table("Title", ["a", "b"],
                             [[1, 2.5], ["x", 10.0]])
        assert "Title" in table
        assert "2.50" in table
        assert "10.0" in table

    def test_save_results(self, tmp_path, monkeypatch):
        import repro.harness.reporting as reporting
        monkeypatch.setattr(reporting, "results_dir",
                            lambda: str(tmp_path))
        path = reporting.save_results("unit", {"x": 1.0})
        assert path.endswith("unit.json")
        import json
        with open(path) as fh:
            assert json.load(fh) == {"x": 1.0}
