"""Unit tests for the dtype layer."""

import numpy as np
import pytest

from repro.graph import dtypes


class TestDTypeIdentity:
    def test_float32_properties(self):
        assert dtypes.float32.is_floating
        assert not dtypes.float32.is_integer
        assert not dtypes.float32.is_bool
        assert not dtypes.float32.is_opaque

    def test_int32_properties(self):
        assert dtypes.int32.is_integer
        assert not dtypes.int32.is_floating

    def test_bool_properties(self):
        assert dtypes.bool_.is_bool

    def test_variant_is_opaque(self):
        assert dtypes.variant.is_opaque
        assert dtypes.variant.np_dtype is None

    def test_equality_by_name(self):
        assert dtypes.float32 == dtypes.as_dtype("float32")
        assert dtypes.float32 != dtypes.float64

    def test_hashable(self):
        table = {dtypes.float32: 1, dtypes.int32: 2}
        assert table[dtypes.as_dtype("float32")] == 1

    def test_repr(self):
        assert "float32" in repr(dtypes.float32)


class TestAsDtype:
    def test_passthrough(self):
        assert dtypes.as_dtype(dtypes.int64) is dtypes.int64

    def test_from_string(self):
        assert dtypes.as_dtype("bool") is dtypes.bool_

    def test_from_numpy_dtype(self):
        assert dtypes.as_dtype(np.float32) is dtypes.float32
        assert dtypes.as_dtype(np.dtype(np.int32)) is dtypes.int32

    def test_unknown_string_raises(self):
        with pytest.raises(TypeError):
            dtypes.as_dtype("complex128x")

    def test_unsupported_numpy_raises(self):
        with pytest.raises(TypeError):
            dtypes.as_dtype(np.complex128)


class TestFromNumpy:
    def test_roundtrip(self):
        for dtype in (np.float32, np.float64, np.int32, np.int64, np.bool_):
            arr = np.zeros(3, dtype=dtype)
            assert dtypes.from_numpy(arr).np_dtype == arr.dtype

    def test_unsupported(self):
        with pytest.raises(TypeError):
            dtypes.from_numpy(np.zeros(2, dtype=np.complex64))


class TestAsValue:
    def test_python_float_becomes_float32(self):
        value = dtypes.as_value(1.5)
        assert value.dtype == np.float32

    def test_python_int_becomes_int32(self):
        value = dtypes.as_value(3)
        assert value.dtype == np.int32

    def test_existing_array_dtype_preserved(self):
        arr = np.zeros(2, dtype=np.float64)
        assert dtypes.as_value(arr).dtype == np.float64

    def test_cast_to_requested(self):
        value = dtypes.as_value([1, 2], dtypes.float32)
        assert value.dtype == np.float32

    def test_opaque_passthrough(self):
        marker = object()
        assert dtypes.as_value(marker, dtypes.variant) is marker
