"""Engine tests: scheduling, virtual time, priority policy, threaded parity."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.cache import ROOT_KEY, child_key
from repro.core.subgraph import SubGraph
from repro.runtime.cost_model import CostModel, unit_cost


def chain_graph(n):
    graph = repro.Graph("chain")
    with graph.as_default():
        t = ops.constant(1.0)
        for _ in range(n):
            t = ops.negative(t)
    return graph, t


def diamond_graph(width):
    graph = repro.Graph("diamond")
    with graph.as_default():
        src = ops.constant(1.0)
        mids = [ops.negative(src) for _ in range(width)]
        total = mids[0]
        for m in mids[1:]:
            total = ops.add(total, m)
    return graph, total


class TestVirtualTime:
    def test_chain_time_is_sum(self, runtime):
        graph, out = chain_graph(10)
        sess = repro.Session(graph, runtime, num_workers=4,
                             cost_model=unit_cost())
        sess.run(out)
        # 1 const + 10 negs, strictly sequential: 11 virtual seconds
        assert sess.last_stats.virtual_time == pytest.approx(11.0)

    def test_parallel_ops_overlap(self, runtime):
        graph, out = diamond_graph(8)
        wide = repro.Session(graph, runtime, num_workers=8,
                             cost_model=unit_cost())
        wide.run(out)
        narrow = repro.Session(graph, runtime, num_workers=1,
                               cost_model=unit_cost())
        narrow.run(out)
        assert (wide.last_stats.virtual_time
                < narrow.last_stats.virtual_time)
        # 8 independent negs on 8 workers take 1 tick together
        assert wide.last_stats.max_concurrency == 8

    def test_worker_limit_respected(self, runtime):
        graph, out = diamond_graph(16)
        sess = repro.Session(graph, runtime, num_workers=4,
                             cost_model=unit_cost())
        sess.run(out)
        assert sess.last_stats.max_concurrency <= 4

    def test_determinism(self, runtime):
        graph, out = diamond_graph(12)
        times = set()
        for _ in range(3):
            sess = repro.Session(graph, runtime, num_workers=5,
                                 cost_model=unit_cost())
            sess.run(out)
            times.add(round(sess.last_stats.virtual_time, 9))
        assert len(times) == 1

    def test_master_dispatch_serializes(self, runtime):
        graph, out = diamond_graph(32)
        slow_master = CostModel(dispatch_cost=1.0, op_overhead=1e-9)
        sess = repro.Session(graph, runtime, num_workers=32,
                             cost_model=slow_master)
        sess.run(out)
        # 64 ops dispatched through a 1s-per-op master: >= 64 seconds
        assert sess.last_stats.virtual_time >= 60.0


class TestSchedulingPolicies:
    def _tree_model(self):
        graph = repro.Graph("sched")
        with graph.as_default():
            with SubGraph("fib") as fib:
                n = fib.input(repro.int32, ())
                fib.declare_outputs([(repro.int32, ())])
                fib.output(ops.cond(ops.less_equal(n, 1),
                                    lambda: ops.identity(n),
                                    lambda: ops.add(fib(n - 1), fib(n - 2))))
            out = fib(ops.constant(10))
        return graph, out

    def test_depth_priority_matches_fifo_values(self, runtime):
        graph, out = self._tree_model()
        fifo = repro.Session(graph, runtime, num_workers=4,
                             scheduler="fifo")
        depth = repro.Session(graph, runtime, num_workers=4,
                              scheduler="depth")
        assert fifo.run(out) == depth.run(out) == 55

    def test_unknown_scheduler_rejected(self, runtime):
        graph, out = chain_graph(1)
        # unknown scheduler silently falls back to fifo is NOT wanted;
        # the Session accepts the string and the engine treats non-"depth"
        # as fifo — assert values still correct
        sess = repro.Session(graph, runtime, scheduler="fifo")
        assert sess.run(out) == pytest.approx(-1.0)


class TestFetchSemantics:
    def test_prunes_to_fetches(self, runtime):
        graph = repro.Graph("prune")
        with graph.as_default():
            a = ops.constant(1.0)
            b = ops.negative(a)
            _unused = ops.negative(ops.negative(b))
            target = ops.add(a, b)
        sess = repro.Session(graph, runtime)
        sess.run(target)
        # 4 ops needed (a, b, add and nothing else)
        assert sess.last_stats.ops_executed == 3

    def test_fetch_structure_preserved(self, runtime):
        graph, out = chain_graph(1)
        sess = repro.Session(graph, runtime)
        single = sess.run(out)
        listed = sess.run([out])
        assert single == pytest.approx(-1.0)
        assert listed == [single]

    def test_foreign_fetch_rejected(self, runtime):
        graph, out = chain_graph(1)
        other, other_out = chain_graph(1)
        sess = repro.Session(graph, runtime)
        with pytest.raises(ValueError, match="belongs to graph"):
            sess.run(other_out)

    def test_stateful_side_effects_when_fetched(self, runtime):
        graph = repro.Graph("stateful")
        v = repro.Variable("sv", np.float32(1.0), runtime=runtime)
        with graph.as_default():
            update = ops.assign_add("sv", ops.constant(np.float32(2.0)))
        sess = repro.Session(graph, runtime)
        sess.run(update)
        assert runtime.variables.read("sv") == pytest.approx(3.0)


class TestErrorHandling:
    def test_kernel_error_carries_op_context(self, runtime):
        graph = repro.Graph("err")
        with graph.as_default():
            a = ops.constant(np.ones((2, 3), dtype=np.float32))
            b = ops.constant(np.ones((2, 3), dtype=np.float32))
            # force a runtime error: reshape to an invalid size
            bad = ops.reshape(a, (7, 7))
        sess = repro.Session(graph, runtime)
        with pytest.raises(repro.EngineError, match="reshape"):
            sess.run(bad)

    def test_error_inside_subgraph_is_reported(self, runtime):
        graph = repro.Graph("err2")
        with graph.as_default():
            with SubGraph("bad") as bad:
                x = bad.input(repro.float32, (2,))
                bad.output(ops.reshape(x, (5,)))
            out = bad(ops.constant([1.0, 2.0]))
        sess = repro.Session(graph, runtime)
        with pytest.raises(repro.EngineError):
            sess.run(out)


class TestThreadedEngineParity:
    def _recursive_workload(self):
        graph = repro.Graph("parity")
        runtime = repro.Runtime()
        with graph.as_default():
            with SubGraph("fib") as fib:
                n = fib.input(repro.int32, ())
                fib.declare_outputs([(repro.int32, ())])
                fib.output(ops.cond(ops.less_equal(n, 1),
                                    lambda: ops.identity(n),
                                    lambda: ops.add(fib(n - 1), fib(n - 2))))
            out = fib(ops.constant(12))
        return graph, runtime, out

    def test_threaded_matches_event_engine(self):
        graph, runtime, out = self._recursive_workload()
        event = repro.Session(graph, runtime, num_workers=4)
        threaded = repro.Session(graph, runtime, num_workers=4,
                                 engine="threaded")
        assert event.run(out) == threaded.run(out) == 144

    def test_threaded_runs_loops(self):
        graph = repro.Graph("tl")
        runtime = repro.Runtime()
        with graph.as_default():
            _, s = ops.while_loop(
                lambda i, s: ops.less(i, 20),
                lambda i, s: (ops.add(i, 1),
                              ops.add(s, ops.cast(i, repro.float32))),
                [ops.constant(0), ops.constant(0.0)])
        sess = repro.Session(graph, runtime, num_workers=3,
                             engine="threaded")
        assert sess.run(s) == pytest.approx(190.0)

    def test_threaded_training_gradients_match(self):
        graph = repro.Graph("tg")
        runtime = repro.Runtime()
        w = repro.Variable("tw", np.float32(2.0), runtime=runtime)
        with graph.as_default():
            with SubGraph("chain") as chain:
                n = chain.input(repro.int32, ())
                chain.declare_outputs([(repro.float32, ())])
                chain.output(ops.cond(
                    ops.less_equal(n, 0),
                    lambda: ops.constant(1.0),
                    lambda: ops.multiply(w.read(), chain(n - 1))))
            y = chain(ops.constant(3))
            _, updates = repro.gradients(y, [])
        fetches = [y] + [op.outputs[-1] for op in updates]
        sess = repro.Session(graph, runtime, num_workers=4,
                             engine="threaded", record=True)
        runtime.accumulators.zero()
        sess.run(fetches)
        # d(w^3)/dw = 3 w^2 = 12
        assert runtime.accumulators.read("tw") == pytest.approx(12.0)

    def test_threaded_error_propagates(self):
        graph = repro.Graph("te")
        runtime = repro.Runtime()
        with graph.as_default():
            bad = ops.reshape(ops.constant([1.0, 2.0]), (3,))
        sess = repro.Session(graph, runtime, engine="threaded")
        with pytest.raises(repro.EngineError):
            sess.run(bad)

    def test_unknown_engine_rejected(self):
        graph, out = chain_graph(1)
        with pytest.raises(ValueError, match="unknown engine"):
            repro.Session(graph, repro.Runtime(), engine="quantum")


class TestFrameKeys:
    def test_child_key_derivation(self):
        key = child_key(ROOT_KEY, 5)
        assert key == (5,)
        assert child_key(key, (7, 3)) == (5, (7, 3))

    def test_sibling_keys_distinct(self):
        parent = child_key(ROOT_KEY, 1)
        assert child_key(parent, 2) != child_key(parent, 3)
