"""Smoke tests: the runnable examples execute end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    runpy.run_path(path, run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "10! = 3628800" in out
    assert "fib(15) = 610" in out


def test_dynamic_generation_runs(capsys):
    run_example("dynamic_generation.py")
    out = capsys.readouterr().out
    assert "distinct structures" in out
    assert "speedup" in out
