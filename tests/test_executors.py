"""Cross-executor equivalence: every registered backend computes the
same numbers.

The layering contract (see ARCHITECTURE.md): the
:class:`~repro.runtime.scheduler.SchedulerCore` owns all scheduling
semantics and an executor backend may only change *when and where*
kernels run, never what they compute.  These tests iterate the executor
registry — so a newly registered backend is pulled into the equivalence
bar automatically — and assert bit-identical fetches and gradients
against the virtual-time reference on a randomized tree workload,
batched and unbatched.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.subgraph import SubGraph
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.models import ModelConfig, TreeRNNSentiment
from repro.runtime import (EventEngine, SchedulerCore, available_executors,
                           register_executor, resolve_executor)

ENGINES = available_executors()


@pytest.fixture(scope="module")
def bank():
    # seeded random trees: the randomized tree workload
    return make_treebank(num_train=6, num_val=2, vocab_size=40, seed=23)


@pytest.fixture(scope="module")
def model(bank):
    return TreeRNNSentiment(ModelConfig(hidden=10, embed_dim=10,
                                        vocab_size=40), repro.Runtime())


@pytest.fixture(scope="module")
def built(model):
    return model.build_recursive(1)


@pytest.fixture(scope="module")
def grad_fetches(built):
    """loss + accumulate-only gradient updates (variables untouched)."""
    with built.graph.as_default():
        _, updates = repro.gradients(built.loss, [])
    return [built.loss] + [op.outputs[-1] for op in updates]


def _reference_logits(model, built, bank):
    session = repro.Session(built.graph, model.runtime, num_workers=4)
    return [session.run(built.root_logits,
                        built.feed_dict(batch_trees([tree])))
            for tree in bank.train]


class TestRegistry:
    def test_builtins_registered(self):
        assert {"event", "threaded", "workerpool"} <= set(ENGINES)

    def test_legacy_names_resolve_to_legacy_engines(self):
        from repro.runtime.threaded import ThreadedEngine
        from repro.runtime.workerpool import WorkerPoolEngine
        assert resolve_executor("event") is EventEngine
        assert resolve_executor("threaded") is ThreadedEngine
        assert resolve_executor("workerpool") is WorkerPoolEngine
        for name in ENGINES:
            assert issubclass(resolve_executor(name), SchedulerCore)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_executor("quantum")
        with pytest.raises(ValueError, match="unknown engine"):
            repro.Session(repro.Graph("x"), repro.Runtime(), engine="quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("event", SchedulerCore)
        # re-registering the same class is an idempotent no-op
        register_executor("event", EventEngine)

    def test_only_event_engine_is_virtual(self):
        for name in ENGINES:
            cls = resolve_executor(name)
            assert cls.virtual_clock == (name == "event"), name


@pytest.mark.parametrize("engine", ENGINES)
class TestCrossExecutorEquivalence:
    @pytest.mark.parametrize("batching", [False, True])
    @pytest.mark.timeout(120)
    def test_fetches_bit_identical(self, bank, model, built, engine,
                                   batching):
        """Per-tree root logits match the event reference exactly."""
        reference = _reference_logits(model, built, bank)
        session = repro.Session(built.graph, model.runtime, num_workers=4,
                                engine=engine, batching=batching)
        for tree, expected in zip(bank.train, reference):
            got = session.run(built.root_logits,
                              built.feed_dict(batch_trees([tree])))
            assert np.array_equal(expected, got)

    @pytest.mark.parametrize("batching", [False, True])
    @pytest.mark.timeout(120)
    def test_gradients_bit_identical(self, bank, model, built, grad_fetches,
                                     engine, batching):
        """Accumulated gradients match the event reference exactly
        (canonical frame-key ordering makes them order-independent)."""
        feed = built.feed_dict(batch_trees([bank.train[0]]))
        accumulators = model.runtime.accumulators
        names = [v.name for v in model.runtime.trainable_variables()]

        def grads_under(engine_name, batching_mode):
            session = repro.Session(built.graph, model.runtime,
                                    num_workers=4, engine=engine_name,
                                    record=True, batching=batching_mode)
            accumulators.zero()
            loss = session.run(grad_fetches, feed)[0]
            return loss, {name: np.copy(accumulators.read(name))
                          for name in names}

        ref_loss, reference = grads_under("event", False)
        loss, grads = grads_under(engine, batching)
        assert loss == ref_loss
        assert set(grads) == set(reference)
        for name in names:
            assert np.array_equal(reference[name], grads[name]), name

    @pytest.mark.timeout(120)
    def test_recursion_limit_enforced(self, engine, bank, model, built):
        graph = repro.Graph("limit")
        with graph.as_default():
            with SubGraph("down") as down:
                n = down.input(repro.int32, ())
                down.declare_outputs([(repro.int32, ())])
                down.output(ops.cond(ops.less_equal(n, 0),
                                     lambda: ops.constant(0),
                                     lambda: down(n - 1)))
            out = down(ops.constant(100))
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine, max_depth=10)
        with pytest.raises(repro.EngineError, match="recursion limit"):
            session.run(out)

    @pytest.mark.timeout(120)
    def test_kernel_error_propagates(self, engine, bank, model, built):
        graph = repro.Graph("err")
        with graph.as_default():
            bad = ops.reshape(ops.constant([1.0, 2.0]), (3,))
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine)
        with pytest.raises(repro.EngineError):
            session.run(bad)

    @pytest.mark.timeout(60)
    def test_repeat_drain_after_failure_raises_not_hangs(self, engine,
                                                         bank, model, built):
        """A failed serving session stays failed: draining again must
        re-raise the session error, not wait forever on roots that will
        never complete."""
        graph = repro.Graph("redrain")
        with graph.as_default():
            table = ops.constant(np.arange(4, dtype=np.float32))
            idx = ops.placeholder(repro.int32, (), "idx")
            out = ops.gather(table, idx)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine)
        eng = session._engine
        eng.begin_serving()
        eng.submit_root(graph, [out], {idx.op.id: np.int32(99)}, ("r0",),
                        lambda values: None)
        with pytest.raises(repro.EngineError):
            eng.drain()
        with pytest.raises(repro.EngineError):
            eng.drain()
        eng.end_serving()


class TestWorkerPoolSpecifics:
    """Behaviour only the centralized-master backend exhibits."""

    @pytest.mark.timeout(120)
    def test_serving_reuse_and_fusion(self, bank, model, built):
        session = repro.Session(built.graph, model.runtime, num_workers=3,
                                engine="workerpool", batching=True)
        reference = _reference_logits(model, built, bank)
        feeds = [built.feed_dict(batch_trees([t])) for t in bank.train]
        with session.serve(max_in_flight=4) as server:
            first = [server.submit(built.root_logits, f) for f in feeds]
            server.drain()
            second = [server.submit(built.root_logits, f) for f in feeds]
            server.drain()
        assert server.completed == 2 * len(feeds)
        for tickets in (first, second):
            for ticket, expected in zip(tickets, reference):
                assert np.array_equal(expected, ticket.result())
        # the centralized master coalesces whole wavefronts
        assert server.stats.batches > 0

    @pytest.mark.timeout(60)
    def test_serving_error_fails_outstanding(self):
        graph = repro.Graph("wp_err")
        with graph.as_default():
            table = ops.constant(np.arange(4, dtype=np.float32))
            idx = ops.placeholder(repro.int32, (), "idx")
            out = ops.gather(table, idx)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine="workerpool")
        server = session.serve(max_in_flight=2)
        bad = server.submit(out, {idx: 77})
        with pytest.raises(repro.EngineError):
            server.drain()
        with pytest.raises(repro.EngineError):
            bad.result(timeout=10)
        server.close()
