"""Gradient correctness: finite-difference checks for every op gradient."""

import numpy as np
import pytest

import repro
from repro import ops


def numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar-valued f at x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus, minus = x.copy(), x.copy()
        plus[idx] += eps
        minus[idx] -= eps
        grad[idx] = (f(plus) - f(minus)) / (2 * eps)
        it.iternext()
    return grad


def check_grad(build_fn, x0, rtol=2e-2, atol=2e-3, workers=1):
    """Compare symbolic d(sum(f(x)))/dx against finite differences.

    ``build_fn(x_tensor) -> output tensor`` is evaluated in a fresh graph.
    """
    x0 = np.asarray(x0, dtype=np.float32)
    graph = repro.Graph("gradcheck")
    runtime = repro.Runtime()
    with graph.as_default():
        x = ops.placeholder(repro.float32, x0.shape)
        y = ops.reduce_sum(build_fn(x))
        grads, _ = repro.gradients(y, [x])
    sess = repro.Session(graph, runtime, num_workers=workers)
    symbolic = sess.run(grads[0], {x: x0})

    def f(v):
        return float(sess.run(y, {x: v.astype(np.float32)}))

    numeric = numeric_grad(f, x0)
    np.testing.assert_allclose(symbolic, numeric, rtol=rtol, atol=atol)


RNG = np.random.default_rng(42)


class TestUnaryGradients:
    CASES = [
        ("neg", ops.negative, (3,)),
        ("tanh", ops.tanh, (4,)),
        ("sigmoid", ops.sigmoid, (4,)),
        ("exp", ops.exp, (3,)),
        ("square", ops.square, (3,)),
        ("identity", ops.identity, (3,)),
    ]

    @pytest.mark.parametrize("name,fn,shape",
                             CASES, ids=[c[0] for c in CASES])
    def test_unary(self, name, fn, shape):
        check_grad(fn, RNG.standard_normal(shape) * 0.5)

    def test_relu_away_from_kink(self):
        check_grad(ops.relu, np.array([-2.0, -0.5, 0.7, 1.5]))

    def test_log(self):
        check_grad(ops.log, np.array([0.5, 1.0, 2.5]))

    def test_sqrt(self):
        check_grad(ops.sqrt, np.array([0.5, 1.2, 4.0]))

    def test_abs_away_from_zero(self):
        check_grad(ops.abs_, np.array([-2.0, 1.5, 0.7]))


class TestBinaryGradients:
    def test_add(self):
        check_grad(lambda x: ops.add(x, ops.constant([1.0, 2.0])),
                   [0.5, -1.0])

    def test_sub_second_arg(self):
        check_grad(lambda x: ops.subtract(ops.constant([1.0, 2.0]), x),
                   [0.5, -1.0])

    def test_mul(self):
        check_grad(lambda x: ops.multiply(x, x), [0.5, -1.5, 2.0])

    def test_div(self):
        check_grad(lambda x: ops.divide(x, ops.constant([2.0, 4.0])),
                   [1.0, 3.0])
        check_grad(lambda x: ops.divide(ops.constant([2.0, 4.0]), x),
                   [1.0, 3.0])

    def test_maximum(self):
        check_grad(lambda x: ops.maximum(x, ops.constant([0.0, 0.0])),
                   [0.5, -1.5])

    def test_minimum(self):
        check_grad(lambda x: ops.minimum(x, ops.constant([1.0, 1.0])),
                   [0.5, 2.5])

    def test_broadcast_grad_reduces(self):
        # x: [2] broadcast against [3, 2]: gradient must sum over rows
        check_grad(
            lambda x: ops.multiply(x, ops.constant(np.ones((3, 2),
                                                           np.float32))),
            [0.5, -1.0])

    def test_scalar_broadcast(self):
        check_grad(
            lambda x: ops.multiply(x, ops.constant(np.ones((2, 2),
                                                           np.float32))),
            1.5)


class TestMatmulGradients:
    B = RNG.standard_normal((3, 2)).astype(np.float32)
    A = RNG.standard_normal((2, 3)).astype(np.float32)

    def test_matmul_lhs(self):
        check_grad(lambda x: ops.matmul(x, ops.constant(self.B)),
                   RNG.standard_normal((2, 3)) * 0.5)

    def test_matmul_rhs(self):
        check_grad(lambda x: ops.matmul(ops.constant(self.A), x),
                   RNG.standard_normal((3, 2)) * 0.5)


class TestArrayGradients:
    def test_reshape(self):
        check_grad(lambda x: ops.square(ops.reshape(x, (2, 3))),
                   RNG.standard_normal(6))

    def test_transpose(self):
        check_grad(lambda x: ops.square(ops.transpose(x)),
                   RNG.standard_normal((2, 3)))

    def test_transpose_perm(self):
        check_grad(lambda x: ops.square(ops.transpose(x, perm=(1, 0, 2))),
                   RNG.standard_normal((2, 2, 2)))

    def test_concat(self):
        check_grad(
            lambda x: ops.square(ops.concat(
                [x, ops.constant(np.ones((2, 1), np.float32))], axis=1)),
            RNG.standard_normal((2, 2)))

    def test_gather(self):
        check_grad(
            lambda x: ops.square(ops.gather(
                x, ops.constant(np.array([2, 0, 2], np.int32)))),
            RNG.standard_normal((3, 2)))

    def test_stack(self):
        check_grad(lambda x: ops.square(ops.stack([x, x])),
                   RNG.standard_normal(3))

    def test_unstack(self):
        check_grad(lambda x: ops.square(ops.unstack(x, 2)[1]),
                   RNG.standard_normal((2, 3)))

    def test_expand_dims(self):
        check_grad(lambda x: ops.square(ops.expand_dims(x, 0)),
                   RNG.standard_normal(4))

    def test_squeeze(self):
        check_grad(lambda x: ops.square(ops.squeeze(x, 1)),
                   RNG.standard_normal((3, 1)))

    def test_slice(self):
        check_grad(lambda x: ops.square(ops.slice_(x, (0, 1), (2, 2))),
                   RNG.standard_normal((3, 4)))

    def test_select(self):
        check_grad(
            lambda x: ops.select(
                ops.constant(np.array([True, False, True])), x,
                ops.constant(np.zeros(3, np.float32))),
            RNG.standard_normal(3))

    def test_cast_float_to_float(self):
        check_grad(lambda x: ops.cast(ops.cast(x, repro.float64),
                                      repro.float32),
                   RNG.standard_normal(3))


class TestReductionGradients:
    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, True), ((0, 1), False)])
    def test_reduce_sum(self, axis, keepdims):
        check_grad(lambda x: ops.square(
            ops.reduce_sum(x, axis=axis, keepdims=keepdims)),
            RNG.standard_normal((3, 4)))

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_reduce_mean(self, axis):
        check_grad(lambda x: ops.square(ops.reduce_mean(x, axis=axis)),
                   RNG.standard_normal((2, 5)))

    def test_reduce_max(self):
        # distinct values so the max subgradient is unambiguous
        x0 = np.array([[1.0, 5.0, 2.0], [7.0, 0.5, 3.0]])
        check_grad(lambda x: ops.square(ops.reduce_max(x, axis=1)), x0)


class TestNNGradients:
    def test_softmax(self):
        check_grad(lambda x: ops.square(ops.softmax(x)),
                   RNG.standard_normal((2, 4)))

    def test_log_softmax(self):
        check_grad(lambda x: ops.square(ops.log_softmax(x)),
                   RNG.standard_normal((2, 4)))

    def test_cross_entropy(self):
        check_grad(
            lambda x: ops.softmax_cross_entropy_with_logits(
                x, ops.constant(np.array([1, 0], np.int32))),
            RNG.standard_normal((2, 3)))


class TestGradientAccumulation:
    def test_multiple_paths_sum(self):
        # y = x*x + x  =>  dy/dx = 2x + 1
        check_grad(lambda x: ops.add(ops.multiply(x, x), x), [1.5, -0.5])

    def test_unconnected_returns_none(self, graph):
        x = ops.placeholder(repro.float32, ())
        y = ops.constant(1.0)
        grads, _ = repro.gradients(y, [x])
        assert grads[0] is None

    def test_grad_ys_seed(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        y = ops.multiply(x, 3.0)
        seed = ops.constant(2.0)
        grads, _ = repro.gradients([y], [x], grad_ys=[seed])
        sess = repro.Session(graph, runtime)
        assert sess.run(grads[0], {x: 1.0}) == pytest.approx(6.0)

    def test_duplicate_y_counts_twice(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        y = ops.multiply(x, 1.0)
        grads, _ = repro.gradients([y, y], [x])
        sess = repro.Session(graph, runtime)
        assert sess.run(grads[0], {x: 1.0}) == pytest.approx(2.0)


class TestVariableGradients:
    def test_accum_grad_through_read(self, graph, runtime):
        v = repro.Variable("w", np.float32(3.0), runtime=runtime)
        loss = ops.square(v.read())
        _, updates = repro.gradients(loss, [])
        sess = repro.Session(graph, runtime)
        fetches = [loss] + [op.outputs[-1] for op in updates]
        sess.run(fetches)
        assert runtime.accumulators.read("w") == pytest.approx(6.0)

    def test_two_reads_accumulate(self, graph, runtime):
        v = repro.Variable("w2", np.float32(2.0), runtime=runtime)
        loss = ops.add(v.read(), ops.multiply(v.read(), 2.0))
        _, updates = repro.gradients(loss, [])
        sess = repro.Session(graph, runtime)
        sess.run([loss] + [op.outputs[-1] for op in updates])
        # read() memoizes per graph: one read, grads 1 + 2 = 3
        assert runtime.accumulators.read("w2") == pytest.approx(3.0)
