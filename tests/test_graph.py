"""Unit tests for graphs, operations and the default-graph stack."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.graph.graph import Graph, get_default_graph


class TestGraphConstruction:
    def test_op_ids_are_topological(self, graph):
        a = ops.constant(1.0)
        b = ops.constant(2.0)
        c = ops.add(a, b)
        assert a.op.id < c.op.id
        assert b.op.id < c.op.id

    def test_unique_names(self, graph):
        a = ops.constant(1.0, name="x")
        b = ops.constant(2.0, name="x")
        assert a.op.name == "x"
        assert b.op.name == "x_1"

    def test_get_operation_by_name(self, graph):
        t = ops.constant(1.0, name="c0")
        assert graph.get_operation("c0") is t.op

    def test_finalize_blocks_additions(self, graph):
        ops.constant(1.0)
        graph.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            ops.constant(2.0)

    def test_cross_graph_input_rejected(self, graph):
        a = ops.constant(1.0)
        other = Graph("other")
        with other.as_default():
            with pytest.raises(ValueError, match="Cross-graph"):
                other.add_op("Neg", [a])

    def test_non_tensor_input_rejected(self, graph):
        with pytest.raises(TypeError, match="not a Tensor"):
            graph.add_op("Neg", [3.0])

    def test_validate_passes_on_wellformed(self, graph):
        c = ops.add(ops.constant(1.0), ops.constant(2.0))
        graph.validate()

    def test_repr(self, graph):
        ops.constant(1.0)
        assert "ops=1" in repr(graph)


class TestDefaultGraph:
    def test_nested_contexts(self):
        g1, g2 = Graph("g1"), Graph("g2")
        with g1.as_default():
            assert get_default_graph() is g1
            with g2.as_default():
                assert get_default_graph() is g2
            assert get_default_graph() is g1

    def test_reset_default_graph(self):
        g = repro.reset_default_graph()
        assert get_default_graph() is g

    def test_reset_inside_context_fails(self):
        with Graph("tmp").as_default():
            with pytest.raises(RuntimeError):
                repro.reset_default_graph()


class TestConsumersAndDependencies:
    def test_consumers_map(self, graph):
        a = ops.constant(1.0)
        b = ops.negative(a)
        c = ops.negative(a)
        consumers = graph.consumers()[a.op.id]
        assert {op.name for op in consumers} == {b.op.name, c.op.name}

    def test_duplicate_input_counted_once(self, graph):
        a = ops.constant(2.0)
        b = ops.multiply(a, a)
        assert graph.dependency_count(b.op) == 1

    def test_control_inputs_add_dependency(self, graph):
        a = ops.constant(1.0)
        b = ops.constant(2.0)
        b.op.add_control_input(a.op)
        assert graph.dependency_count(b.op) == 1
        assert b.op in graph.consumers()[a.op.id]

    def test_control_input_cross_graph_rejected(self, graph):
        a = ops.constant(1.0)
        other = Graph("other")
        with other.as_default():
            b = ops.constant(2.0)
        with pytest.raises(ValueError):
            b.op.add_control_input(a.op)

    def test_reachable_from(self, graph):
        a = ops.constant(1.0)
        b = ops.negative(a)
        unrelated = ops.constant(9.0)
        reachable = graph.reachable_from([b.op])
        assert a.op.id in reachable
        assert b.op.id in reachable
        assert unrelated.op.id not in reachable


class TestTensor:
    def test_shape_and_dtype(self, graph):
        t = ops.constant(np.zeros((2, 3), dtype=np.float32))
        assert t.shape == (2, 3)
        assert t.dtype is repro.float32

    def test_operator_overloads(self, graph, runtime):
        a = ops.constant(3.0)
        b = ops.constant(4.0)
        sess = repro.Session(graph, runtime)
        assert sess.run(a + b) == pytest.approx(7.0)
        assert sess.run(a - b) == pytest.approx(-1.0)
        assert sess.run(a * b) == pytest.approx(12.0)
        assert sess.run(a / b) == pytest.approx(0.75)
        assert sess.run(-a) == pytest.approx(-3.0)

    def test_matmul_operator(self, graph, runtime):
        a = ops.constant(np.eye(2, dtype=np.float32))
        b = ops.constant(np.ones((2, 2), dtype=np.float32))
        out = repro.Session(graph, runtime).run(a @ b)
        np.testing.assert_allclose(out, np.ones((2, 2)))

    def test_bool_conversion_raises(self, graph):
        t = ops.constant(True)
        with pytest.raises(TypeError, match="symbolic"):
            bool(t)

    def test_iteration_raises(self, graph):
        t = ops.constant([1.0, 2.0])
        with pytest.raises(TypeError):
            iter(t)

    def test_indexing_with_int(self, graph, runtime):
        t = ops.constant([10.0, 20.0, 30.0])
        assert repro.Session(graph, runtime).run(t[1]) == pytest.approx(20.0)

    def test_indexing_with_slice(self, graph, runtime):
        t = ops.constant([10.0, 20.0, 30.0])
        out = repro.Session(graph, runtime).run(t[1:3])
        np.testing.assert_allclose(out, [20.0, 30.0])
