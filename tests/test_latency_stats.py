"""Per-request latency accounting: percentile math, queue/engine split,
and RunStats merging across a server's lifetime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.stats import RunStats, percentile

pytestmark = pytest.mark.serving


class TestPercentile:
    def test_linear_interpolation_matches_hand_computation(self):
        # 10 samples 1..10: rank(p50) = 0.5 * 9 = 4.5 -> 5 + 0.5*(6-5)
        assert percentile(range(1, 11), 50) == 5.5
        # rank(p95) = 0.95 * 9 = 8.55 -> 9 + 0.55*(10-9)
        assert percentile(range(1, 11), 95) == pytest.approx(9.55)

    def test_p99_on_100_samples(self):
        # rank = 0.99 * 99 = 98.01 -> 99 + 0.01*(100-99)
        assert percentile(range(1, 101), 99) == pytest.approx(99.01)

    def test_extremes_and_singleton(self):
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0
        assert percentile([3.0, 1.0, 2.0], 100) == 3.0
        assert percentile([42.0], 99) == 42.0

    def test_input_order_is_irrelevant(self):
        shuffled = [7.0, 1.0, 9.0, 3.0, 5.0]
        assert percentile(shuffled, 50) == percentile(sorted(shuffled), 50)

    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(17)
        data = rng.exponential(1.0, size=37).tolist()
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert percentile(data, q) == pytest.approx(
                float(np.percentile(data, q)))

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestRequestAccounting:
    def test_queue_engine_split_and_totals(self):
        stats = RunStats()
        stats.note_request(1.0, 3.0)
        stats.note_request(2.0, 4.0)
        assert stats.requests == 2
        assert stats.queue_times == [1.0, 2.0]
        assert stats.engine_times == [3.0, 4.0]
        assert stats.request_latencies == [4.0, 6.0]
        summary = stats.latency_summary()
        assert summary["requests"] == 2
        assert summary["queue"]["p50"] == 1.5
        assert summary["engine"]["p50"] == 3.5
        assert summary["total"]["p50"] == 5.0
        assert summary["total"]["mean"] == 5.0
        assert summary["total"]["max"] == 6.0

    def test_empty_summary_and_rejections(self):
        stats = RunStats()
        assert stats.latency_summary() == {}
        stats.note_rejected()
        stats.note_rejected()
        assert stats.rejected_requests == 2
        # rejections alone still produce no latency distribution
        assert stats.latency_summary() == {}
        stats.note_request(0.5, 0.5)
        assert stats.latency_summary()["rejected"] == 2

    def test_merge_accumulates_samples_across_lifetime(self):
        """Merging per-drain snapshots must behave like one long session."""
        first, second, combined = RunStats(), RunStats(), RunStats()
        for i in range(10):
            first.note_request(float(i), 2.0 * i)
            combined.note_request(float(i), 2.0 * i)
        for i in range(10, 30):
            second.note_request(float(i), 2.0 * i)
            combined.note_request(float(i), 2.0 * i)
        second.note_rejected()
        combined.note_rejected()
        first.merge(second)
        assert first.requests == combined.requests == 30
        assert first.rejected_requests == combined.rejected_requests == 1
        assert first.latency_summary() == combined.latency_summary()

    def test_sample_retention_is_bounded(self):
        """Beyond the cap, note_request reservoir-samples: memory stays
        constant, counts stay exact, percentiles stay representative."""
        stats = RunStats(max_latency_samples=32)
        for i in range(1000):
            stats.note_request(float(i), 2.0)
        assert stats.requests == 1000
        assert len(stats.queue_times) == 32
        assert len(stats.engine_times) == 32
        summary = stats.latency_summary()
        assert summary["requests"] == 1000
        # retained samples are real observations, and late ones made it in
        assert all(0.0 <= q < 1000.0 for q in stats.queue_times)
        assert max(stats.queue_times) >= 32
        # deterministic: the same stream retains the same reservoir
        again = RunStats(max_latency_samples=32)
        for i in range(1000):
            again.note_request(float(i), 2.0)
        assert again.queue_times == stats.queue_times

    def test_merge_respects_sample_bound(self):
        a = RunStats(max_latency_samples=16)
        b = RunStats(max_latency_samples=16)
        for i in range(16):
            a.note_request(float(i), 1.0)
            b.note_request(float(100 + i), 1.0)
        a.merge(b)
        assert a.requests == 32
        assert len(a.queue_times) == 16
        assert len(a.engine_times) == 16
        # the downsample keeps samples from both halves
        assert any(q < 100 for q in a.queue_times)
        assert any(q >= 100 for q in a.queue_times)
        # post-merge reservoir replacement still covers every slot
        for i in range(200):
            a.note_request(1000.0 + i, 1.0)
        assert len(a.queue_times) == 16

    def test_summary_string_reports_latency_line(self):
        stats = RunStats()
        stats.note_request(0.001, 0.002)
        text = stats.summary()
        assert "requests=1" in text
        assert "p99" in text
