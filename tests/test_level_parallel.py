"""Parallel compiled sweeps + profile canonicalization (level-plan tier).

Two perf features share one contract with the serial compiled path:
*bit-identity*.  Parallel sweeps fan independent same-level buckets out
to the pool workers behind a per-level barrier; canonicalization caps
compiled plans at a depth bucket and runs deeper/partially-determined
trees as a dynamic root spine launching compiled sub-sweeps.  Values,
gradients and cache keys must match the dynamic scheduler exactly, and
failures (lying profiles, uncompilable subtrees) must keep their serial
semantics.
"""

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.subgraph import SubGraph
from repro.data import batch_trees, make_treebank
from repro.models import ModelConfig, TreeRNNSentiment
from repro.runtime.batching import BatchPolicy
from repro.runtime.level_plan import level_plan_for
from repro.runtime.plan import plan_for_fetches
from repro.runtime.scheduler import available_executors
from repro.runtime.stats import RunStats

ENGINES = available_executors()
POOL_ENGINES = [e for e in ENGINES if e in ("workerpool", "procpool")]

CONFIG = ModelConfig(vocab_size=50, hidden=8, embed_dim=8)


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=16, num_val=4, vocab_size=50,
                         max_words=12, mean_log_words=2.2, seed=11)


def _run_model(engine, trees, train, profile=True, canon=None, workers=4):
    """One fresh build + run; returns (values, grads, stats)."""
    runtime = repro.Runtime()
    model = TreeRNNSentiment(CONFIG, runtime)
    built = model.build_recursive(len(trees))
    batch = batch_trees(trees)
    fetches = [built.loss, built.root_logits]
    if train:
        _, updates = repro.gradients(built.loss, [])
        fetches += [op.outputs[-1] for op in updates]
    session = repro.Session(built.graph, runtime, num_workers=workers,
                            engine=engine, record=train,
                            level_canon_depth=canon)
    runtime.accumulators.zero()
    kwargs = ({"shape_profile": built.shape_profiles(batch)}
              if profile else {})
    values = session.run(fetches, built.feed_dict(batch), **kwargs)
    grads = ({name: np.copy(runtime.accumulators.read(name))
              for name in runtime.accumulators.names()} if train else {})
    return values, grads, session.last_stats


def _assert_same_results(ref, got):
    (ref_values, ref_grads, _), (values, grads, _) = ref, got
    for a, b in zip(ref_values, values):
        assert np.array_equal(a, b)
    assert set(grads) == set(ref_grads)
    for name in ref_grads:
        assert np.array_equal(grads[name], ref_grads[name]), name


def _tree_sum_graph(name):
    """Array-backed binary reduction with a *fed* root index, so one
    graph serves a whole stream of distinct tree shapes."""
    graph = repro.Graph(name)
    with graph.as_default():
        values = ops.placeholder(repro.float32, (None,))
        children = ops.placeholder(repro.int32, (None, 2))
        is_leaf = ops.placeholder(repro.bool_, (None,))
        root = ops.placeholder(repro.int32, ())
        with SubGraph("tsum") as tsum:
            idx = tsum.input(repro.int32, ())
            tsum.declare_outputs([(repro.float32, ())])

            def leaf():
                return ops.gather(values, idx)

            def internal():
                pair = ops.gather(children, idx)
                return ops.add(tsum(ops.gather(pair, 0)),
                               tsum(ops.gather(pair, 1)))

            tsum.output(ops.cond(ops.gather(is_leaf, idx), leaf, internal))
        out = tsum(root)
    return graph, out, (values, children, is_leaf, root)


def _materialize(profile, rng):
    """Post-order array encoding of a shape profile, random leaf values."""
    nodes = []

    def build(p):
        if not p:
            nodes.append((True, -1, -1))
        else:
            left = build(p[0])
            right = build(p[1])
            nodes.append((False, left, right))
        return len(nodes) - 1

    root = build(profile)
    vals = rng.normal(size=len(nodes)).astype(np.float32)
    children = np.array([[l, r] for _, l, r in nodes], dtype=np.int32)
    leaf = np.array([f for f, _, _ in nodes])
    return root, vals, children, leaf


def _feeds(placeholders, profile, rng):
    values, children, is_leaf, root = placeholders
    root_idx, vals, kids, leaf = _materialize(profile, rng)
    return {values: vals, children: kids, is_leaf: leaf, root: root_idx}


def _rand_profile(rng, depth, force):
    """Random binary shape; the top ``force`` levels are internal, so
    the profile's depth is at least ``force + 1``."""
    if depth <= 1:
        return ()
    if force <= 0 and rng.random() < 0.3:
        return ()
    return (_rand_profile(rng, depth - 1, force - 1),
            _rand_profile(rng, depth - 1, force - 1))


class TestParallelSweeps:
    """REPRO_LEVEL_PARALLEL=1 must change wall-clock only: values,
    gradients and level-plan stats stay identical to the serial sweep
    and to the dynamic scheduler."""

    @pytest.mark.parametrize("train", [False, True],
                             ids=["forward", "train"])
    @pytest.mark.parametrize("engine", POOL_ENGINES)
    def test_parallel_matches_serial_and_dynamic(self, bank, engine, train,
                                                 monkeypatch):
        trees = bank.train[:3]
        dynamic = _run_model(engine, trees, train, profile=False)
        monkeypatch.setenv("REPRO_LEVEL_PARALLEL", "0")
        serial = _run_model(engine, trees, train)
        monkeypatch.setenv("REPRO_LEVEL_PARALLEL", "1")
        parallel = _run_model(engine, trees, train)
        for compiled in (serial, parallel):
            assert compiled[2].level_plan_hits == 1
            assert compiled[2].level_plan_fallbacks == 0
            _assert_same_results(dynamic, compiled)

    @pytest.mark.parametrize("engine", POOL_ENGINES)
    def test_randomized_trees_parallel_identical(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_LEVEL_PARALLEL", "1")
        wide = make_treebank(num_train=8, num_val=0, vocab_size=50,
                             max_words=18, mean_log_words=2.5, seed=37)
        dynamic = _run_model(engine, wide.train[:4], train=True,
                             profile=False)
        parallel = _run_model(engine, wide.train[:4], train=True)
        assert parallel[2].level_plan_hits == 1
        assert parallel[2].level_plan_fallbacks == 0
        _assert_same_results(dynamic, parallel)

    @pytest.mark.parametrize("engine", POOL_ENGINES)
    def test_nary_parallel_identical(self, engine, monkeypatch):
        """The barrier is not binary-specific: 3-ary reductions too."""
        monkeypatch.setenv("REPRO_LEVEL_PARALLEL", "1")
        graph = repro.Graph(f"nary-par-{engine}")
        with graph.as_default():
            values = ops.placeholder(repro.float32, (None,))
            children = ops.placeholder(repro.int32, (None, 3))
            is_leaf = ops.placeholder(repro.bool_, (None,))
            with SubGraph("tsum3") as tsum:
                idx = tsum.input(repro.int32, ())
                tsum.declare_outputs([(repro.float32, ())])

                def leaf():
                    return ops.gather(values, idx)

                def internal():
                    kids = ops.gather(children, idx)
                    return ops.add(
                        ops.add(tsum(ops.gather(kids, 0)),
                                tsum(ops.gather(kids, 1))),
                        ops.add(tsum(ops.gather(kids, 2)),
                                ops.gather(values, idx)))

                tsum.output(ops.cond(ops.gather(is_leaf, idx), leaf,
                                     internal))
            out = tsum(ops.constant(6))
        feeds = {values: np.arange(7, dtype=np.float32),
                 children: np.array([[-1] * 3] * 6 + [[0, 1, 2]],
                                    dtype=np.int32),
                 is_leaf: np.array([True] * 6 + [False])}
        session = repro.Session(graph, repro.Runtime(), num_workers=4,
                                engine=engine)
        ref = session.run(out, feeds)
        got = session.run(out, feeds, shape_profile=(((), (), ()),))
        assert session.last_stats.level_plan_hits == 1
        assert np.array_equal(ref, got)


class TestCanonicalization:
    """level_canon_depth trades one-plan-per-shape for a dynamic spine
    over a small canonical plan set — values unchanged."""

    @pytest.mark.parametrize("train", [False, True],
                             ids=["forward", "train"])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_canonicalized_equals_dynamic(self, bank, engine, train):
        trees = [t for t in bank.train if t.depth > 2][:3]
        assert len(trees) == 3
        dynamic = _run_model(engine, trees, train, profile=False)
        canon = _run_model(engine, trees, train, canon=2)
        stats = canon[2]
        assert stats.level_plan_partial_roots == 1
        assert stats.level_plan_subtree_runs >= 1
        assert stats.level_plan_fallbacks == 0
        assert stats.level_plan_hits == 0
        _assert_same_results(dynamic, canon)

    def test_shallow_profile_still_compiles_fully(self, bank):
        """Profiles within the canon bucket keep the whole-root path."""
        trees = [t for t in bank.train if t.depth > 2][:2]
        full = _run_model("event", trees, train=False, canon=64)
        assert full[2].level_plan_hits == 1
        assert full[2].level_plan_partial_roots == 0

    def test_heavy_tailed_stream_bounded_compiles(self):
        """50 distinct deep shapes, canon depth 3: the compile cache
        converges onto the tiny canonical subtree set (there are only 5
        binary shapes of depth <= 3), with no fallbacks."""
        rng = np.random.default_rng(101)
        graph, out, placeholders = _tree_sum_graph("stream")
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                level_canon_depth=3)
        profiles, seen = [], set()
        while len(profiles) < 50:
            p = _rand_profile(rng, int(rng.integers(5, 9)), force=3)
            if p not in seen:
                seen.add(p)
                profiles.append(p)
        hits = misses = fallbacks = subtree_runs = 0
        for p in profiles:
            feeds = _feeds(placeholders, p, rng)
            ref = session.run(out, feeds)
            got = session.run(out, feeds, shape_profile=(p,))
            assert np.array_equal(ref, got)
            stats = session.last_stats
            hits += stats.level_plan_cache_hits
            misses += stats.level_plan_cache_misses
            fallbacks += stats.level_plan_fallbacks
            subtree_runs += stats.level_plan_subtree_runs
        assert fallbacks == 0
        assert subtree_runs >= len(profiles)
        # compiled-plan count <= 10% of distinct shapes in the stream
        assert misses <= len(profiles) // 10
        assert hits / (hits + misses) >= 0.9


class TestPartialCompilation:
    """Profiles with None holes run the determined subtrees compiled
    and only the undetermined ones dynamically."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_hole_profile_runs_determined_subtrees(self, engine):
        rng = np.random.default_rng(7)
        graph, out, placeholders = _tree_sum_graph(f"holes-{engine}")
        full = (((), ()), ())
        feeds = _feeds(placeholders, full, rng)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine)
        ref = session.run(out, feeds)
        got = session.run(out, feeds, shape_profile=((((), ()), None),))
        stats = session.last_stats
        assert np.array_equal(ref, got)
        assert stats.level_plan_partial_roots == 1
        assert stats.level_plan_subtree_runs >= 1
        assert stats.level_plan_fallbacks == 0

    def test_all_holes_profile_runs_dynamically(self):
        """A root whose children are all undetermined still succeeds —
        the spine spawns plain dynamic frames for the holes."""
        rng = np.random.default_rng(13)
        graph, out, placeholders = _tree_sum_graph("all-holes")
        feeds = _feeds(placeholders, (((), ()), ()), rng)
        session = repro.Session(graph, repro.Runtime(), num_workers=2)
        ref = session.run(out, feeds)
        got = session.run(out, feeds, shape_profile=((None, None),))
        assert np.array_equal(ref, got)
        assert session.last_stats.level_plan_partial_roots == 1
        assert session.last_stats.level_plan_fallbacks == 0

    def test_uncompilable_subtree_falls_back_per_subtree(self):
        """A shape-invisible Cond inside the spine costs one per-subtree
        fallback, not the whole admission."""
        graph = repro.Graph("amb-spine")
        with graph.as_default():
            with SubGraph("amb") as amb:
                n = amb.input(repro.int32, ())
                amb.declare_outputs([(repro.int32, ())])

                def base():
                    return ops.identity(n)

                def rec():
                    return ops.cond(ops.less_equal(n, 3),
                                    lambda: amb(n - 1),
                                    lambda: amb(n - 2))

                amb.output(ops.cond(ops.less_equal(n, 1), base, rec))
            out = amb(ops.constant(3))
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                level_canon_depth=2)
        ref = session.run(out)
        got = session.run(out, shape_profile=((((),),),))
        stats = session.last_stats
        assert got == ref
        assert stats.level_plan_partial_roots == 1
        assert stats.level_plan_fallbacks >= 1
        assert stats.level_plan_hits == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_lying_canonical_profile_raises(self, engine):
        """Spine mode keeps the verified-predicate contract: a compiled
        sub-sweep launched from a lying canonical profile errors instead
        of returning a wrong value."""
        rng = np.random.default_rng(29)
        graph, out, placeholders = _tree_sum_graph(f"liar-{engine}")
        feeds = _feeds(placeholders, (((), ()), ()), rng)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine, level_canon_depth=1)
        session.run(out, feeds)  # sanity: the data itself is fine
        # depth 2 > canon 1 forces the spine; both claimed children
        # contradict the data (left is internal, right is a leaf)
        with pytest.raises(repro.EngineError, match="shape profile"):
            session.run(out, feeds, shape_profile=(((), ((), ())),))


class TestPlanCacheLRU:
    """Compiled plans and the ineligible-shape memo are LRU-bounded."""

    def test_compiled_plans_evict_lru(self, monkeypatch):
        from repro.runtime import level_plan
        monkeypatch.setattr(level_plan, "LEVEL_PLAN_CAP", 2)
        graph, out, _ = _tree_sum_graph("lru")
        plan = plan_for_fetches(graph, {out.op})
        stats = RunStats()
        profiles = [(((), ()),), ((((), ()), ()),), (((), ((), ())),)]
        plans = [level_plan_for(graph, plan, p, False, stats=stats)
                 for p in profiles]
        assert all(lp is not None for lp in plans)
        assert stats.level_plan_evictions == 1
        # the most-recent entries survived ...
        assert level_plan_for(graph, plan, profiles[2], False,
                              stats=stats) is plans[2]
        # ... the oldest did not: recompiling it is a fresh miss
        before = stats.level_plan_cache_misses
        fresh = level_plan_for(graph, plan, profiles[0], False, stats=stats)
        assert fresh is not plans[0]
        assert stats.level_plan_cache_misses == before + 1

    def test_recent_hit_refreshes_lru_order(self, monkeypatch):
        from repro.runtime import level_plan
        monkeypatch.setattr(level_plan, "LEVEL_PLAN_CAP", 2)
        graph, out, _ = _tree_sum_graph("lru-touch")
        plan = plan_for_fetches(graph, {out.op})
        stats = RunStats()
        a, b = (((), ()),), ((((), ()), ()),)
        lp_a = level_plan_for(graph, plan, a, False, stats=stats)
        level_plan_for(graph, plan, b, False, stats=stats)
        # touch a: it becomes most-recent, so inserting c evicts b
        assert level_plan_for(graph, plan, a, False, stats=stats) is lp_a
        level_plan_for(graph, plan, (((), ((), ())),), False, stats=stats)
        assert level_plan_for(graph, plan, a, False, stats=stats) is lp_a
        assert stats.level_plan_evictions == 1

    def test_ineligible_memo_evicts_lru(self, monkeypatch):
        from repro.runtime import level_plan
        monkeypatch.setattr(level_plan, "LEVEL_PLAN_INELIGIBLE_CAP", 1)
        graph = repro.Graph("flat-lru")
        with graph.as_default():
            x = ops.constant(0.5)
            y = ops.tanh(x)
        plan = plan_for_fetches(graph, {y.op})
        stats = RunStats()
        assert level_plan_for(graph, plan, ((),), False, stats=stats) is None
        assert level_plan_for(graph, plan, (((), ()),), False,
                              stats=stats) is None
        assert stats.level_plan_evictions == 1


class TestKnobValidation:
    def test_batch_policy_rejects_non_positive_depth(self):
        with pytest.raises(ValueError, match="level_canon_depth"):
            BatchPolicy(level_canon_depth=0)

    def test_session_rejects_non_positive_depth(self):
        with pytest.raises(ValueError, match="level_canon_depth"):
            repro.Session(repro.Graph("bad-knob"), repro.Runtime(),
                          level_canon_depth=0)

    def test_session_rejects_depth_on_existing_policy(self):
        with pytest.raises(ValueError, match="level_canon_depth"):
            repro.Session(repro.Graph("bad-knob2"), repro.Runtime(),
                          batch_policy=BatchPolicy(), level_canon_depth=-1)

    def test_session_threads_depth_into_policy(self):
        session = repro.Session(repro.Graph("knob"), repro.Runtime(),
                                level_canon_depth=4)
        assert session._engine.batch_policy.level_canon_depth == 4
