"""Level-plan compilation: profiles, bit-identity, fallbacks, caching.

The compiled fast path (:mod:`repro.runtime.level_plan`) lowers an
admission whose tree shape is known up front into a fixed sequence of
pre-bucketed batched dispatches.  Its contract is *bit-identity* with
the dynamic scheduler — same values, same gradients, same cache keys —
with transparent fallback for anything it cannot compile.  These tests
pin that contract across every registered executor.
"""

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.subgraph import SubGraph
from repro.data import batch_trees, make_treebank
from repro.data.trees import Tree, TreeNode, shape_profile_of
from repro.models import (ModelConfig, RNTNSentiment, TreeLSTMSentiment,
                          TreeRNNSentiment, tree_lstm_config)
from repro.runtime.level_plan import level_plan_for
from repro.runtime.plan import plan_for_fetches
from repro.runtime.scheduler import available_executors

ENGINES = available_executors()

MODELS = [
    ("treernn", TreeRNNSentiment,
     ModelConfig(vocab_size=50, hidden=8, embed_dim=8)),
    ("rntn", RNTNSentiment,
     ModelConfig(vocab_size=50, hidden=6, embed_dim=6)),
    ("treelstm", TreeLSTMSentiment,
     tree_lstm_config(vocab_size=50, hidden=6, embed_dim=5)),
]


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=16, num_val=4, vocab_size=50,
                         max_words=12, mean_log_words=2.2, seed=11)


class TestShapeProfiles:
    """The cached per-tree depth profile (data-layer satellite)."""

    def _tree(self):
        #      internal
        #     /        \
        #  leaf      internal
        #            /      \
        #          leaf    leaf
        return Tree(TreeNode(left=TreeNode(word=1),
                             right=TreeNode(left=TreeNode(word=2),
                                            right=TreeNode(word=3))))

    def test_profile_of_known_shape(self):
        tree = self._tree()
        assert shape_profile_of(tree.root) == ((), ((), ()))
        assert shape_profile_of(tree.root.left) == ()

    def test_profile_is_cached_on_the_tree(self):
        tree = self._tree()
        assert tree.shape_profile is tree.shape_profile

    def test_profile_equality_tracks_shape_only(self):
        a = Tree(TreeNode(left=TreeNode(word=1), right=TreeNode(word=2)))
        b = Tree(TreeNode(left=TreeNode(word=9), right=TreeNode(word=4),
                          label=1))
        assert a.shape_profile == b.shape_profile

    def test_profile_stats_match_tree_counts(self, bank):
        for tree in bank.train[:6]:
            assert tree.num_nodes == tree.root.size()
            assert tree.num_leaves == tree.root.num_leaves()
            assert tree.depth == tree.root.depth()

    def test_deep_chain_profile_is_iterative(self):
        node = TreeNode(word=0)
        for _ in range(3000):  # far beyond the default recursion limit
            node = TreeNode(left=node, right=TreeNode(word=1))
        profile = Tree(node).shape_profile
        depth = 1
        while profile:
            profile = profile[0]
            depth += 1
        assert depth == 3001

    def test_batch_carries_profiles_in_order(self, bank):
        trees = bank.train[:4]
        batch = batch_trees(trees)
        assert batch.profiles == tuple(t.shape_profile for t in trees)


def _model_pair(engine, cls, config, trees, train, workers=4):
    """Run (dynamic, compiled) on a fresh build each; return results."""
    out = []
    for use_profile in (False, True):
        runtime = repro.Runtime()
        model = cls(config, runtime)
        built = model.build_recursive(len(trees))
        batch = batch_trees(trees)
        fetches = [built.loss, built.root_logits]
        if train:
            _, updates = repro.gradients(built.loss, [])
            fetches += [op.outputs[-1] for op in updates]
        session = repro.Session(built.graph, runtime, num_workers=workers,
                                engine=engine, record=train)
        runtime.accumulators.zero()
        kwargs = ({"shape_profile": built.shape_profiles(batch)}
                  if use_profile else {})
        values = session.run(fetches, built.feed_dict(batch), **kwargs)
        grads = ({name: np.copy(runtime.accumulators.read(name))
                  for name in runtime.accumulators.names()} if train else {})
        out.append((values, grads, session.last_stats))
    return out


def _assert_bit_identical(dynamic, compiled):
    (ref_values, ref_grads, _), (values, grads, stats) = dynamic, compiled
    assert stats.level_plan_hits == 1
    assert stats.level_plan_fallbacks == 0
    for ref, got in zip(ref_values, values):
        assert np.array_equal(ref, got)
    assert set(grads) == set(ref_grads)
    for name in ref_grads:
        assert np.array_equal(grads[name], ref_grads[name]), name


class TestBitIdentity:
    """Compiled forward/backward values must equal the dynamic path
    exactly — not approximately — on every registered executor."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_forward_identical(self, bank, engine):
        pair = _model_pair(engine, TreeRNNSentiment, MODELS[0][2],
                           bank.train[:3], train=False)
        _assert_bit_identical(*pair)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_gradients_identical(self, bank, engine):
        pair = _model_pair(engine, TreeRNNSentiment, MODELS[0][2],
                           bank.train[:3], train=True)
        _assert_bit_identical(*pair)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_treelstm_gradients_identical(self, bank, engine):
        pair = _model_pair(engine, TreeLSTMSentiment, MODELS[2][2],
                           bank.train[:2], train=True)
        _assert_bit_identical(*pair)

    @pytest.mark.stress
    @pytest.mark.timeout(600)
    @pytest.mark.parametrize("name,cls,config", MODELS,
                             ids=[m[0] for m in MODELS])
    def test_randomized_trees_identical(self, name, cls, config):
        """Randomized shapes × all models × all executors, training mode."""
        wide = make_treebank(num_train=24, num_val=0, vocab_size=50,
                             max_words=18, mean_log_words=2.5, seed=23)
        for engine in ENGINES:
            for lo in (0, 8, 16):
                pair = _model_pair(engine, cls, config,
                                   wide.train[lo:lo + 4], train=True)
                _assert_bit_identical(*pair)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_nary_recursion_identical(self, engine):
        """Profiles are not binary-specific: a 3-ary reduction compiles."""
        graph = repro.Graph("nary")
        with graph.as_default():
            values = ops.placeholder(repro.float32, (None,))
            children = ops.placeholder(repro.int32, (None, 3))
            is_leaf = ops.placeholder(repro.bool_, (None,))
            with SubGraph("tsum3") as tsum:
                idx = tsum.input(repro.int32, ())
                tsum.declare_outputs([(repro.float32, ())])

                def leaf():
                    return ops.gather(values, idx)

                def internal():
                    kids = ops.gather(children, idx)
                    return ops.add(
                        ops.add(tsum(ops.gather(kids, 0)),
                                tsum(ops.gather(kids, 1))),
                        ops.add(tsum(ops.gather(kids, 2)),
                                ops.gather(values, idx)))

                tsum.output(ops.cond(ops.gather(is_leaf, idx), leaf,
                                     internal))
            out = tsum(ops.constant(6))
        # nodes 0..5 leaves; node 6 = (0, 1, 2); values weight the sum
        feeds = {values: np.arange(7, dtype=np.float32),
                 children: np.array([[-1] * 3] * 6 + [[0, 1, 2]],
                                    dtype=np.int32),
                 is_leaf: np.array([True] * 6 + [False])}
        profile = ((), (), ())
        runtime = repro.Runtime()
        session = repro.Session(graph, runtime, num_workers=4, engine=engine)
        ref = session.run(out, feeds)
        got = session.run(out, feeds, shape_profile=(profile,))
        assert session.last_stats.level_plan_hits == 1
        assert np.array_equal(ref, got)


def _binary_tree_sum(graph):
    """The Figure-1 array-backed binary reduction, as a level-plan target."""
    with graph.as_default():
        values = ops.placeholder(repro.float32, (None,))
        children = ops.placeholder(repro.int32, (None, 2))
        is_leaf = ops.placeholder(repro.bool_, (None,))
        with SubGraph("tsum") as tsum:
            idx = tsum.input(repro.int32, ())
            tsum.declare_outputs([(repro.float32, ())])

            def leaf():
                return ops.gather(values, idx)

            def internal():
                pair = ops.gather(children, idx)
                return ops.add(tsum(ops.gather(pair, 0)),
                               tsum(ops.gather(pair, 1)))

            tsum.output(ops.cond(ops.gather(is_leaf, idx), leaf, internal))
        out = tsum(ops.constant(2))
    feeds = {values: np.array([2.0, 3.0, 1.0], dtype=np.float32),
             children: np.array([[-1, -1], [-1, -1], [0, 1]],
                                dtype=np.int32),
             is_leaf: np.array([True, True, False])}
    return out, feeds


class TestFallbacks:
    """Ineligible admissions must run dynamically — correct values, one
    fallback counted, no error."""

    def test_shape_invisible_branch_falls_back(self):
        """A Cond whose branches recurse identically cannot be compiled:
        the shape profile does not determine the branch decision."""
        graph = repro.Graph("ambiguous")
        with graph.as_default():
            with SubGraph("amb") as amb:
                n = amb.input(repro.int32, ())
                amb.declare_outputs([(repro.int32, ())])

                def base():
                    return ops.identity(n)

                def rec():
                    return ops.cond(ops.less_equal(n, 3),
                                    lambda: amb(n - 1),
                                    lambda: amb(n - 2))

                amb.output(ops.cond(ops.less_equal(n, 1), base, rec))
            out = amb(ops.constant(7))
        session = repro.Session(graph, repro.Runtime(), num_workers=2)
        ref = session.run(out)
        got = session.run(out, shape_profile=(((),),))
        assert session.last_stats.level_plan_fallbacks == 1
        assert session.last_stats.level_plan_hits == 0
        assert got == ref

    def test_profile_count_mismatch_falls_back(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(MODELS[0][2], runtime)
        built = model.build_recursive(2)
        batch = batch_trees(bank.train[:2])
        session = repro.Session(built.graph, runtime, num_workers=2)
        ref = session.run(built.loss, built.feed_dict(batch))
        got = session.run(built.loss, built.feed_dict(batch),
                          shape_profile=built.shape_profiles(batch)[:1])
        assert session.last_stats.level_plan_fallbacks == 1
        assert np.array_equal(ref, got)

    def test_graph_without_recursion_falls_back(self):
        graph = repro.Graph("flat")
        with graph.as_default():
            x = ops.placeholder(repro.float32, ())
            y = ops.tanh(x)
        session = repro.Session(graph, repro.Runtime())
        got = session.run(y, {x: 0.5}, shape_profile=((),))
        assert session.last_stats.level_plan_fallbacks == 1
        assert got == np.tanh(np.float32(0.5))

    def test_lying_profile_raises(self):
        """A profile inconsistent with the fed data is an error, not a
        wrong answer: the compiled branch decision is verified at the
        predicate."""
        graph = repro.Graph("liar")
        out, feeds = _binary_tree_sum(graph)
        session = repro.Session(graph, repro.Runtime(), num_workers=2)
        assert session.run(out, feeds) == pytest.approx(5.0)
        # claim the root is a leaf: compiles, then contradicts the data
        with pytest.raises(repro.EngineError, match="shape profile"):
            session.run(out, feeds, shape_profile=((),))


class TestPlanCache:
    """Compiled level plans memoize per (root plan, profiles, record) and
    drop on any event that invalidates FramePlans."""

    def _compiled(self, graph, fetch, profiles):
        plan = plan_for_fetches(graph, {fetch.op})
        return level_plan_for(graph, plan, profiles, False)

    def test_memoized_per_profile(self):
        graph = repro.Graph("memo")
        out, _ = _binary_tree_sum(graph)
        lp = self._compiled(graph, out, (((), ()),))
        assert self._compiled(graph, out, (((), ()),)) is lp
        other = self._compiled(graph, out, ((((), ()), ()),))
        assert other is not lp

    def test_ineligible_memoized_as_none(self):
        graph = repro.Graph("inel")
        with graph.as_default():
            y = ops.tanh(ops.constant(1.0))
        assert self._compiled(graph, y, ((),)) is None
        assert self._compiled(graph, y, ((),)) is None

    def test_invalidated_by_add_op(self):
        graph = repro.Graph("addop")
        out, _ = _binary_tree_sum(graph)
        lp = self._compiled(graph, out, (((), ()),))
        with graph.as_default():
            ops.constant(99.0)
        assert self._compiled(graph, out, (((), ()),)) is not lp

    def test_invalidated_by_registry_mutation(self):
        """A registry bump must recompile level plans: they bake in the
        FramePlans (OpDefs, batch signatures) of every frame they span."""
        from repro.graph import registry

        graph = repro.Graph("regbump")
        out, _ = _binary_tree_sum(graph)
        lp = self._compiled(graph, out, (((), ()),))
        registry._bump_version()
        fresh = self._compiled(graph, out, (((), ()),))
        assert fresh is not None
        assert fresh is not lp

    def test_record_mode_is_part_of_the_key(self):
        graph = repro.Graph("reckey")
        out, _ = _binary_tree_sum(graph)
        plan = plan_for_fetches(graph, {out.op})
        lp_infer = level_plan_for(graph, plan, (((), ()),), False)
        lp_train = level_plan_for(graph, plan, (((), ()),), True)
        assert lp_infer is not lp_train


class TestServingMerge:
    """Same-profile requests arriving together merge into one wavefront."""

    def test_event_engine_merges_same_instant(self, bank):
        tree = bank.train[0]
        runtime = repro.Runtime()
        model = TreeRNNSentiment(MODELS[0][2], runtime)
        built = model.build_recursive(1)
        batch = batch_trees([tree])
        session = repro.Session(built.graph, runtime, num_workers=4)
        ref = session.run(built.root_logits, built.feed_dict(batch))
        with session.serve(max_in_flight=8) as server:
            tickets = [server.submit(built.root_logits,
                                     built.feed_dict(batch), at=0.0,
                                     shape_profile=built.shape_profiles(batch))
                       for _ in range(4)]
            server.drain()
            values = [t.result() for t in tickets]
            stats = server.stats
        assert stats.level_plan_hits == 4
        assert stats.level_plan_fallbacks == 0
        for got in values:
            assert np.array_equal(ref, got)
        # the merged sweep fused across requests: some level dispatched
        # at least the 4-way cross-request width
        widest = max(w for hist in stats.level_width_hist.values()
                     for w in hist)
        assert widest >= 4

    @pytest.mark.serving
    @pytest.mark.timeout(60)
    @pytest.mark.parametrize("engine", [e for e in ENGINES if e != "event"])
    def test_wall_clock_serving_identical(self, bank, engine):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(MODELS[0][2], runtime)
        built = model.build_recursive(1)
        session = repro.Session(built.graph, runtime, num_workers=4,
                                engine=engine)
        batches = [batch_trees([t]) for t in bank.train[:4]]
        refs = [session.run(built.root_logits, built.feed_dict(b))
                for b in batches]
        with session.serve(max_in_flight=8) as server:
            tickets = [server.submit(built.root_logits, built.feed_dict(b),
                                     shape_profile=built.shape_profiles(b))
                       for b in batches]
            server.drain()
            values = [t.result() for t in tickets]
            stats = server.stats
        assert stats.level_plan_hits == 4
        for ref, got in zip(refs, values):
            assert np.array_equal(ref, got)
