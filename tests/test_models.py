"""Integration tests: the three sentiment models across implementations."""

import numpy as np
import pytest

import repro
from repro.data import batch_trees, make_treebank
from repro.models import (ModelConfig, RNTNSentiment, TreeLSTMSentiment,
                          TreeRNNSentiment, accuracy_from_logits,
                          tree_lstm_config)
from repro.nn import Adagrad, Trainer


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=16, num_val=6, vocab_size=50,
                         max_words=14, mean_log_words=2.0, seed=5)


MODELS = [
    ("treernn", TreeRNNSentiment,
     ModelConfig(vocab_size=50, hidden=10, embed_dim=10)),
    ("rntn", RNTNSentiment,
     ModelConfig(vocab_size=50, hidden=8, embed_dim=8)),
    ("treelstm", TreeLSTMSentiment,
     tree_lstm_config(vocab_size=50, hidden=8, embed_dim=6)),
]


def build_and_grads(model_cls, config, builder, batch):
    runtime = repro.Runtime()
    model = model_cls(config, runtime)
    if builder == "build_unrolled":
        built = model.build_unrolled(batch)
    else:
        built = getattr(model, builder)(batch.size)
    trainer = Trainer(built.graph, built.loss, Adagrad(0.05), runtime,
                      session_kwargs={"num_workers": 8})
    loss = trainer.compute_gradients(built.feed_dict(batch))
    session = repro.Session(built.graph, runtime, num_workers=8)
    logits = session.run(built.root_logits, built.feed_dict(batch))
    return loss, trainer.gradient_snapshot(), logits


class TestImplementationEquivalence:
    """Recursive / iterative / unrolled must agree exactly — the paper's
    convergence argument (Section 6.2) rests on numerical identity."""

    @pytest.mark.parametrize("name,cls,config", MODELS,
                             ids=[m[0] for m in MODELS])
    def test_losses_and_gradients_match(self, bank, name, cls, config):
        batch = batch_trees(bank.train[:3])
        ref_loss, ref_grads, ref_logits = build_and_grads(
            cls, config, "build_recursive", batch)
        for builder in ("build_iterative", "build_unrolled"):
            loss, grads, logits = build_and_grads(cls, config, builder,
                                                  batch)
            assert loss == pytest.approx(ref_loss, abs=1e-5), builder
            np.testing.assert_allclose(logits, ref_logits, atol=1e-4,
                                       err_msg=builder)
            assert set(grads) == set(ref_grads)
            for key in ref_grads:
                np.testing.assert_allclose(grads[key], ref_grads[key],
                                           atol=1e-4, err_msg=f"{builder}:"
                                                              f"{key}")

    def test_batch_one_equivalence(self, bank):
        batch = batch_trees(bank.train[:1])
        ref = build_and_grads(TreeRNNSentiment, MODELS[0][2],
                              "build_recursive", batch)
        it = build_and_grads(TreeRNNSentiment, MODELS[0][2],
                             "build_iterative", batch)
        assert it[0] == pytest.approx(ref[0], abs=1e-5)


class TestModelTraining:
    def test_recursive_training_reduces_loss(self, bank):
        runtime = repro.Runtime()
        config = ModelConfig(vocab_size=50, hidden=12, embed_dim=12,
                             learning_rate=0.2)
        model = TreeRNNSentiment(config, runtime)
        built = model.build_recursive(4)
        trainer = Trainer(built.graph, built.loss, Adagrad(0.2), runtime,
                          session_kwargs={"num_workers": 8})
        batch = batch_trees(bank.train[:4])
        losses = [trainer.step(built.feed_dict(batch)) for _ in range(8)]
        assert losses[-1] < losses[0] * 0.7

    def test_accuracy_improves_when_overfitting(self, bank):
        runtime = repro.Runtime()
        config = ModelConfig(vocab_size=50, hidden=12, embed_dim=12)
        model = TreeRNNSentiment(config, runtime)
        built = model.build_recursive(4)
        trainer = Trainer(built.graph, built.loss, Adagrad(0.3), runtime,
                          session_kwargs={"num_workers": 8})
        batch = batch_trees(bank.train[:4])
        session = trainer.session
        for _ in range(12):
            trainer.step(built.feed_dict(batch))
        logits = session.run(built.root_logits, built.feed_dict(batch),
                             record=False)
        assert accuracy_from_logits(logits, batch) >= 0.75

    def test_feed_dict_checks_batch_size(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(MODELS[0][2], runtime)
        built = model.build_recursive(2)
        with pytest.raises(ValueError, match="batch size"):
            built.feed_dict(batch_trees(bank.train[:3]))

    def test_graph_reused_across_tree_sizes(self, bank):
        """The embedded-control-flow advantage: one graph, any tree shape."""
        runtime = repro.Runtime()
        model = TreeRNNSentiment(MODELS[0][2], runtime)
        built = model.build_recursive(2)
        session = repro.Session(built.graph, runtime, num_workers=4)
        small = batch_trees(bank.train[:2])
        large = batch_trees(sorted(bank.train, key=lambda t: -t.num_nodes)[:2])
        loss_a = session.run(built.loss, built.feed_dict(small))
        loss_b = session.run(built.loss, built.feed_dict(large))
        assert np.isfinite(loss_a) and np.isfinite(loss_b)

    def test_variables_shared_between_builders(self, bank):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(MODELS[0][2], runtime)
        rec = model.build_recursive(1)
        it = model.build_iterative(1)
        batch = batch_trees(bank.train[:1])
        s1 = repro.Session(rec.graph, runtime, num_workers=2)
        s2 = repro.Session(it.graph, runtime, num_workers=2)
        assert s1.run(rec.loss, rec.feed_dict(batch)) == pytest.approx(
            s2.run(it.loss, it.feed_dict(batch)), abs=1e-5)


class TestAccuracyHelper:
    def test_accuracy_from_logits(self, bank):
        batch = batch_trees(bank.train[:3])
        labels = batch.root_labels()
        logits = np.zeros((3, 2), dtype=np.float32)
        for i, label in enumerate(labels):
            logits[i, label] = 1.0
        assert accuracy_from_logits(logits, batch) == 1.0
        inverted = -logits
        assert accuracy_from_logits(inverted, batch) == 0.0
