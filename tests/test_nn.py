"""Tests for layers, cells (graph vs numpy parity), losses, optimizers."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.nn import (Adagrad, Adam, Dense, Embedding, RNTNCell, SGD,
                      TreeLSTMCell, TreeRNNCell, Trainer)
from repro.nn.losses import (np_cross_entropy, np_cross_entropy_backward,
                             np_softmax)

RNG = np.random.default_rng(0)


class TestLayers:
    def test_dense_forward(self, graph, runtime):
        layer = Dense("d", 3, 2, RNG, runtime=runtime)
        x = ops.constant(RNG.standard_normal((4, 3)).astype(np.float32))
        out = repro.Session(graph, runtime).run(layer(x))
        W = runtime.variables.read("d/W")
        b = runtime.variables.read("d/b")
        np.testing.assert_allclose(out, x.op.attrs["value"] @ W + b,
                                   rtol=1e-5)

    def test_dense_activation(self, graph, runtime):
        layer = Dense("da", 2, 2, RNG, activation=ops.tanh, runtime=runtime)
        x = ops.constant(np.ones((1, 2), dtype=np.float32))
        out = repro.Session(graph, runtime).run(layer(x))
        assert np.all(np.abs(out) <= 1.0)

    def test_embedding_lookup(self, graph, runtime):
        emb = Embedding("e", 10, 4, RNG, runtime=runtime)
        ids = ops.constant(np.array([3, 7], dtype=np.int32))
        out = repro.Session(graph, runtime).run(emb.lookup(ids))
        table = runtime.variables.read("e/table")
        np.testing.assert_allclose(out, table[[3, 7]])

    def test_embedding_np_twin(self, graph, runtime):
        emb = Embedding("e2", 10, 4, RNG, runtime=runtime)
        params = {"e2/table": runtime.variables.read("e2/table")}
        ids = np.array([1, 2], dtype=np.int64)
        sym = repro.Session(graph, runtime).run(
            emb.lookup(ops.constant(ids.astype(np.int32))))
        np.testing.assert_allclose(emb.np_lookup(params, ids), sym)


def _params_of(cell, runtime):
    return {v.name: runtime.variables.read(v.name) for v in cell.variables}


class TestCellParity:
    """Graph-face and numpy-face of each cell must agree (fwd + bwd)."""

    def _check_forward(self, graph, runtime, cell, batch=3):
        params = _params_of(cell, runtime)
        H, D = cell.hidden, cell.input_dim
        x = RNG.standard_normal((batch, D)).astype(np.float32) * 0.5
        left = tuple(RNG.standard_normal((batch, H)).astype(np.float32) * 0.5
                     for _ in range(cell.state_arity))
        right = tuple(RNG.standard_normal((batch, H)).astype(np.float32) * 0.5
                      for _ in range(cell.state_arity))
        sess = repro.Session(graph, runtime)
        leaf_sym = sess.run(list(cell.leaf(ops.constant(x))))
        (leaf_np, _) = cell.np_leaf(params, x)
        for s, n in zip(leaf_sym, leaf_np):
            np.testing.assert_allclose(s, n, rtol=1e-5, atol=1e-6)
        int_sym = sess.run(list(cell.internal(
            tuple(ops.constant(v) for v in left),
            tuple(ops.constant(v) for v in right))))
        (int_np, _) = cell.np_internal(params, left, right)
        for s, n in zip(int_sym, int_np):
            np.testing.assert_allclose(s, n, rtol=1e-5, atol=1e-6)

    def test_treernn_forward_parity(self, graph, runtime):
        self._check_forward(graph, runtime,
                            TreeRNNCell("c1", 8, RNG, runtime=runtime))

    def test_rntn_forward_parity(self, graph, runtime):
        self._check_forward(graph, runtime,
                            RNTNCell("c2", 6, RNG, runtime=runtime))

    def test_treelstm_forward_parity(self, graph, runtime):
        self._check_forward(graph, runtime,
                            TreeLSTMCell("c3", 7, 5, RNG, runtime=runtime))

    def _check_internal_backward(self, graph, runtime, cell):
        """Numpy backward vs autodiff through the graph face."""
        params = _params_of(cell, runtime)
        H = cell.hidden
        arity = cell.state_arity
        left_np = tuple(RNG.standard_normal((1, H)).astype(np.float32) * 0.5
                        for _ in range(arity))
        right_np = tuple(RNG.standard_normal((1, H)).astype(np.float32) * 0.5
                         for _ in range(arity))
        left_ph = [ops.placeholder(repro.float32, (1, H), f"l{i}")
                   for i in range(arity)]
        right_ph = [ops.placeholder(repro.float32, (1, H), f"r{i}")
                    for i in range(arity)]
        out = cell.internal(tuple(left_ph), tuple(right_ph))
        loss = ops.reduce_sum(ops.square(out[0]))
        grads, updates = repro.gradients(loss, left_ph + right_ph)
        sess = repro.Session(graph, runtime, record=True)
        feeds = {ph: v for ph, v in zip(left_ph + right_ph,
                                        left_np + right_np)}
        runtime.accumulators.zero()
        values = sess.run(grads + [op.outputs[-1] for op in updates], feeds)
        sym_grads = values[:2 * arity]
        # numpy face
        (out_np, cache) = cell.np_internal(params, left_np, right_np)
        d_state = [2.0 * out_np[0]] + [np.zeros((1, H), dtype=np.float32)
                                       for _ in range(arity - 1)]
        d_left, d_right, var_grads = cell.np_internal_backward(
            params, cache, tuple(d_state))
        for s, n in zip(sym_grads, list(d_left) + list(d_right)):
            np.testing.assert_allclose(s, n, rtol=1e-4, atol=1e-5)
        for name, g in var_grads.items():
            np.testing.assert_allclose(runtime.accumulators.read(name), g,
                                       rtol=1e-4, atol=1e-5)

    def test_treernn_backward_parity(self, graph, runtime):
        self._check_internal_backward(
            graph, runtime, TreeRNNCell("b1", 6, RNG, runtime=runtime))

    def test_rntn_backward_parity(self, graph, runtime):
        self._check_internal_backward(
            graph, runtime, RNTNCell("b2", 5, RNG, runtime=runtime))

    def test_treelstm_backward_parity(self, graph, runtime):
        self._check_internal_backward(
            graph, runtime, TreeLSTMCell("b3", 6, 4, RNG, runtime=runtime))

    def test_treelstm_leaf_backward_parity(self, graph, runtime):
        cell = TreeLSTMCell("b4", 5, 3, RNG, runtime=runtime)
        params = _params_of(cell, runtime)
        x_np = RNG.standard_normal((1, 3)).astype(np.float32)
        x = ops.placeholder(repro.float32, (1, 3))
        out = cell.leaf(x)
        loss = ops.reduce_sum(ops.square(out[0]))
        grads, updates = repro.gradients(loss, [x])
        sess = repro.Session(graph, runtime, record=True)
        runtime.accumulators.zero()
        values = sess.run(grads + [op.outputs[-1] for op in updates],
                          {x: x_np})
        (out_np, cache) = cell.np_leaf(params, x_np)
        dx, var_grads = cell.np_leaf_backward(
            params, cache, (2.0 * out_np[0], None))
        np.testing.assert_allclose(values[0], dx, rtol=1e-4, atol=1e-5)
        for name, g in var_grads.items():
            np.testing.assert_allclose(runtime.accumulators.read(name), g,
                                       rtol=1e-4, atol=1e-5)

    def test_flops_metadata_positive(self, runtime):
        for cell in (TreeRNNCell("f1", 4, RNG, runtime=runtime),
                     RNTNCell("f2", 4, RNG, runtime=runtime),
                     TreeLSTMCell("f3", 4, 4, RNG, runtime=runtime)):
            assert cell.leaf_flops(10) > 0
            assert cell.internal_flops(10) > cell.leaf_flops(10) * 0
            assert cell.state_bytes(10) > 0

    def test_rntn_heavier_than_treernn(self, runtime):
        rnn = TreeRNNCell("h1", 8, RNG, runtime=runtime)
        rntn = RNTNCell("h2", 8, RNG, runtime=runtime)
        assert rntn.internal_flops(1) > 10 * rnn.internal_flops(1)


class TestLosses:
    def test_np_softmax_normalizes(self):
        probs = np_softmax(RNG.standard_normal((4, 5)) * 10)
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_np_cross_entropy_matches_graph(self, graph, runtime):
        logits = RNG.standard_normal((3, 4)).astype(np.float32)
        labels = np.array([0, 3, 1], dtype=np.int32)
        sym = repro.Session(graph, runtime).run(
            ops.softmax_cross_entropy_with_logits(
                ops.constant(logits), ops.constant(labels)))
        np.testing.assert_allclose(np_cross_entropy(logits, labels), sym,
                                   rtol=1e-5)

    def test_np_ce_backward_matches_graph(self, graph, runtime):
        logits_np = RNG.standard_normal((2, 3)).astype(np.float32)
        labels_np = np.array([1, 2], dtype=np.int32)
        logits = ops.placeholder(repro.float32, (2, 3))
        loss = ops.reduce_sum(ops.softmax_cross_entropy_with_logits(
            logits, ops.constant(labels_np)))
        grads, _ = repro.gradients(loss, [logits])
        sym = repro.Session(graph, runtime).run(grads[0],
                                                {logits: logits_np})
        manual = np_cross_entropy_backward(logits_np, labels_np, np.ones(2))
        np.testing.assert_allclose(sym, manual, rtol=1e-5)


class TestOptimizers:
    def _loss_graph(self, runtime):
        graph = repro.Graph("opt")
        v = repro.Variable("ov", np.float32(4.0), runtime=runtime)
        with graph.as_default():
            loss = ops.square(v.read())
            _, updates = repro.gradients(loss, [])
            fetches = [loss] + [op.outputs[-1] for op in updates]
        return graph, v, fetches

    def test_sgd_step(self, runtime):
        graph, v, fetches = self._loss_graph(runtime)
        opt = SGD(0.1)
        apply_fetches = opt.build_apply(graph, [v], runtime)
        sess = repro.Session(graph, runtime, record=True)
        runtime.accumulators.zero()
        sess.run(fetches)
        sess.run(apply_fetches, record=False)
        # v -= 0.1 * 2v = 4 - 0.8
        assert v.value() == pytest.approx(3.2)

    def test_sgd_numpy_matches_graph(self, runtime):
        graph, v, fetches = self._loss_graph(runtime)
        opt_g = SGD(0.1)
        apply_fetches = opt_g.build_apply(graph, [v], runtime)
        sess = repro.Session(graph, runtime, record=True)
        runtime.accumulators.zero()
        sess.run(fetches)
        grads = {"ov": np.array(runtime.accumulators.read("ov"))}
        sess.run(apply_fetches, record=False)
        graph_result = float(v.value())
        v.assign_value(4.0)
        SGD(0.1).apply_numpy(runtime, grads)
        assert float(v.value()) == pytest.approx(graph_result)

    def test_adagrad_decreasing_steps(self, runtime):
        graph, v, fetches = self._loss_graph(runtime)
        opt = Adagrad(0.5)
        apply_fetches = opt.build_apply(graph, [v], runtime)
        sess = repro.Session(graph, runtime, record=True)
        values = [float(v.value())]
        for _ in range(3):
            runtime.accumulators.zero()
            sess.run(fetches)
            sess.run(apply_fetches, record=False)
            values.append(float(v.value()))
        steps = np.abs(np.diff(values))
        # first Adagrad step is ~lr, subsequent steps shrink
        assert steps[0] == pytest.approx(0.5, rel=0.05)
        assert steps[1] < steps[0]

    def test_adagrad_numpy_matches_graph(self, runtime):
        graph, v, fetches = self._loss_graph(runtime)
        opt = Adagrad(0.2)
        apply_fetches = opt.build_apply(graph, [v], runtime)
        sess = repro.Session(graph, runtime, record=True)
        history = []
        for _ in range(2):
            runtime.accumulators.zero()
            sess.run(fetches)
            history.append(np.array(runtime.accumulators.read("ov")))
            sess.run(apply_fetches, record=False)
        graph_result = float(v.value())
        v.assign_value(4.0)
        np_opt = Adagrad(0.2)
        for g in history:
            np_opt.apply_numpy(runtime, {"ov": g})
        assert float(v.value()) == pytest.approx(graph_result, rel=1e-5)

    def test_adam_converges_on_quadratic(self, runtime):
        graph, v, fetches = self._loss_graph(runtime)
        opt = Adam(0.5)
        apply_fetches = opt.build_apply(graph, [v], runtime)
        sess = repro.Session(graph, runtime, record=True)
        for _ in range(60):
            runtime.accumulators.zero()
            sess.run(fetches)
            sess.run(apply_fetches, record=False)
        assert abs(float(v.value())) < 0.5


class TestTrainer:
    def test_trainer_reduces_loss(self, runtime):
        graph = repro.Graph("tr")
        v = repro.Variable("tv", np.float32(3.0), runtime=runtime)
        with graph.as_default():
            loss = ops.square(v.read())
        trainer = Trainer(graph, loss, SGD(0.1), runtime)
        first = trainer.step()
        for _ in range(5):
            last = trainer.step()
        assert last < first

    def test_trainer_collects_stats(self, runtime):
        graph = repro.Graph("tr2")
        v = repro.Variable("tv2", np.float32(1.0), runtime=runtime)
        with graph.as_default():
            loss = ops.square(v.read())
        trainer = Trainer(graph, loss, SGD(0.1), runtime)
        trainer.step()
        assert trainer.last_step_stats.virtual_time > 0
        assert trainer.last_step_stats.ops_executed > 0

    def test_gradient_snapshot(self, runtime):
        graph = repro.Graph("tr3")
        v = repro.Variable("tv3", np.float32(2.0), runtime=runtime)
        with graph.as_default():
            loss = ops.square(v.read())
        trainer = Trainer(graph, loss, SGD(0.1), runtime)
        trainer.compute_gradients()
        snap = trainer.gradient_snapshot()
        assert snap["tv3"] == pytest.approx(4.0)
