"""Forward-kernel correctness for every op, checked against numpy."""

import numpy as np
import pytest

import repro
from repro import ops
from tests.conftest import run


def const(x):
    return ops.constant(np.asarray(x, dtype=np.float32))


class TestElementwise:
    CASES = [
        ("add", ops.add, lambda a, b: a + b),
        ("sub", ops.subtract, lambda a, b: a - b),
        ("mul", ops.multiply, lambda a, b: a * b),
        ("div", ops.divide, lambda a, b: a / b),
        ("maximum", ops.maximum, np.maximum),
        ("minimum", ops.minimum, np.minimum),
    ]

    @pytest.mark.parametrize("name,op_fn,np_fn",
                             CASES, ids=[c[0] for c in CASES])
    def test_binary(self, graph, name, op_fn, np_fn):
        a = np.array([[1.0, -2.0], [3.5, 4.0]], dtype=np.float32)
        b = np.array([[2.0, 0.5], [-1.0, 2.0]], dtype=np.float32)
        out = run(op_fn(const(a), const(b)))
        np.testing.assert_allclose(out, np_fn(a, b), rtol=1e-6)

    def test_broadcasting(self, graph):
        a = np.ones((2, 3), dtype=np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = run(ops.add(const(a), const(b)))
        np.testing.assert_allclose(out, a + b)

    UNARY = [
        ("neg", ops.negative, lambda x: -x),
        ("tanh", ops.tanh, np.tanh),
        ("sigmoid", ops.sigmoid, lambda x: 1 / (1 + np.exp(-x))),
        ("relu", ops.relu, lambda x: np.maximum(x, 0)),
        ("exp", ops.exp, np.exp),
        ("square", ops.square, np.square),
        ("abs", ops.abs_, np.abs),
        ("sign", ops.sign, np.sign),
    ]

    @pytest.mark.parametrize("name,op_fn,np_fn",
                             UNARY, ids=[c[0] for c in UNARY])
    def test_unary(self, graph, name, op_fn, np_fn):
        x = np.array([-2.0, -0.5, 0.0, 1.5], dtype=np.float32)
        out = run(op_fn(const(x)))
        np.testing.assert_allclose(out, np_fn(x), rtol=1e-6, atol=1e-7)

    def test_log_sqrt(self, graph):
        x = np.array([0.5, 1.0, 4.0], dtype=np.float32)
        np.testing.assert_allclose(run(ops.log(const(x))), np.log(x),
                                   rtol=1e-6)
        np.testing.assert_allclose(run(ops.sqrt(const(x))), np.sqrt(x),
                                   rtol=1e-6)


class TestComparisons:
    def test_all_comparisons(self, graph):
        a = const([1.0, 2.0, 3.0])
        b = const([2.0, 2.0, 2.0])
        sess = repro.Session(a.graph, repro.Runtime())
        np.testing.assert_array_equal(sess.run(ops.less(a, b)),
                                      [True, False, False])
        np.testing.assert_array_equal(sess.run(ops.less_equal(a, b)),
                                      [True, True, False])
        np.testing.assert_array_equal(sess.run(ops.greater(a, b)),
                                      [False, False, True])
        np.testing.assert_array_equal(sess.run(ops.greater_equal(a, b)),
                                      [False, True, True])
        np.testing.assert_array_equal(sess.run(ops.equal(a, b)),
                                      [False, True, False])
        np.testing.assert_array_equal(sess.run(ops.not_equal(a, b)),
                                      [True, False, True])

    def test_logical(self, graph):
        t = ops.constant(np.array([True, True, False]))
        f = ops.constant(np.array([True, False, False]))
        sess = repro.Session(t.graph, repro.Runtime())
        np.testing.assert_array_equal(sess.run(ops.logical_and(t, f)),
                                      [True, False, False])
        np.testing.assert_array_equal(sess.run(ops.logical_or(t, f)),
                                      [True, True, False])
        np.testing.assert_array_equal(sess.run(ops.logical_not(t)),
                                      [False, False, True])

    def test_select(self, graph):
        cond = ops.constant(np.array([True, False]))
        out = run(ops.select(cond, const([1.0, 1.0]), const([2.0, 2.0])))
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_cast(self, graph):
        x = ops.constant(np.array([1.7, -2.2], dtype=np.float32))
        out = run(ops.cast(x, repro.int32))
        assert out.dtype == np.int32
        np.testing.assert_array_equal(out, [1, -2])


class TestMatMul:
    def test_matmul(self, graph):
        a = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
        b = np.random.default_rng(1).standard_normal((4, 2)).astype(np.float32)
        out = run(ops.matmul(const(a), const(b)))
        np.testing.assert_allclose(out, a @ b, rtol=1e-5)

    def test_shape_mismatch_raises_at_build(self, graph):
        a = const(np.zeros((2, 3)))
        b = const(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="inner dims"):
            ops.matmul(a, b)

    def test_int_inputs_rejected(self, graph):
        a = ops.constant(np.zeros((2, 2), dtype=np.int32))
        with pytest.raises(TypeError):
            ops.matmul(a, a)


class TestArrayOps:
    def test_reshape(self, graph):
        x = const(np.arange(6, dtype=np.float32))
        out = run(ops.reshape(x, (2, 3)))
        assert out.shape == (2, 3)

    def test_reshape_minus_one(self, graph):
        x = const(np.arange(8, dtype=np.float32))
        out = run(ops.reshape(x, (-1, 4)))
        assert out.shape == (2, 4)

    def test_transpose_default(self, graph):
        x = const(np.arange(6, dtype=np.float32).reshape(2, 3))
        out = run(ops.transpose(x))
        assert out.shape == (3, 2)

    def test_transpose_perm(self, graph):
        x = const(np.zeros((2, 3, 4), dtype=np.float32))
        out = run(ops.transpose(x, perm=(1, 0, 2)))
        assert out.shape == (3, 2, 4)

    def test_concat(self, graph):
        a = const(np.ones((2, 2)))
        b = const(np.zeros((2, 3)))
        out = run(ops.concat([a, b], axis=1))
        assert out.shape == (2, 5)

    def test_concat_single_is_identity(self, graph):
        a = const(np.ones((2, 2)))
        out = run(ops.concat([a], axis=0))
        np.testing.assert_allclose(out, np.ones((2, 2)))

    def test_concat_incompatible_raises(self, graph):
        a = const(np.ones((2, 2)))
        b = const(np.ones((3, 3)))
        with pytest.raises(ValueError):
            ops.concat([a, b], axis=1)

    def test_gather_vector_indices(self, graph):
        params = const(np.arange(12, dtype=np.float32).reshape(4, 3))
        idx = ops.constant(np.array([2, 0], dtype=np.int32))
        out = run(ops.gather(params, idx))
        np.testing.assert_allclose(out, [[6, 7, 8], [0, 1, 2]])

    def test_gather_scalar_index(self, graph):
        params = const(np.arange(4, dtype=np.float32))
        out = run(ops.gather(params, ops.constant(3)))
        assert out == pytest.approx(3.0)

    def test_stack_unstack(self, graph):
        a, b = const([1.0, 2.0]), const([3.0, 4.0])
        stacked = ops.stack([a, b])
        parts = ops.unstack(stacked, 2)
        sess = repro.Session(a.graph, repro.Runtime())
        np.testing.assert_allclose(sess.run(stacked), [[1, 2], [3, 4]])
        np.testing.assert_allclose(sess.run(parts[1]), [3, 4])

    def test_expand_squeeze(self, graph):
        x = const(np.ones((2, 3)))
        expanded = ops.expand_dims(x, 1)
        assert run(expanded).shape == (2, 1, 3)
        squeezed = ops.squeeze(expanded, 1)
        assert run(squeezed).shape == (2, 3)

    def test_squeeze_non_unit_raises(self, graph):
        x = const(np.ones((2, 3)))
        with pytest.raises(ValueError):
            ops.squeeze(x, 0)

    def test_zeros_ones_like(self, graph):
        x = const(np.full((2, 2), 7.0))
        np.testing.assert_allclose(run(ops.zeros_like(x)), np.zeros((2, 2)))
        np.testing.assert_allclose(run(ops.ones_like(x)), np.ones((2, 2)))

    def test_fill(self, graph):
        out = run(ops.fill((2, 3), 5.0))
        np.testing.assert_allclose(out, np.full((2, 3), 5.0))

    def test_one_hot(self, graph):
        idx = ops.constant(np.array([0, 2], dtype=np.int32))
        out = run(ops.one_hot(idx, 3))
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_argmax(self, graph):
        x = const([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        np.testing.assert_array_equal(run(ops.argmax(x, axis=-1)), [1, 0])

    def test_slice(self, graph):
        x = const(np.arange(12, dtype=np.float32).reshape(3, 4))
        out = run(ops.slice_(x, (1, 1), (2, -1)))
        np.testing.assert_allclose(out, [[5, 6, 7], [9, 10, 11]])

    def test_shape_and_size(self, graph):
        x = const(np.zeros((2, 5)))
        sess = repro.Session(x.graph, repro.Runtime())
        np.testing.assert_array_equal(sess.run(ops.shape_of(x)), [2, 5])
        assert sess.run(ops.size_of(x)) == 10


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, False), (-1, True), ((0, 1), False),
    ])
    def test_reduce_sum(self, graph, axis, keepdims):
        x = np.random.default_rng(2).standard_normal((3, 4)).astype(np.float32)
        out = run(ops.reduce_sum(const(x), axis=axis, keepdims=keepdims))
        np.testing.assert_allclose(out, np.sum(x, axis=axis,
                                               keepdims=keepdims), rtol=1e-5)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_reduce_mean(self, graph, axis):
        x = np.random.default_rng(3).standard_normal((2, 5)).astype(np.float32)
        out = run(ops.reduce_mean(const(x), axis=axis))
        np.testing.assert_allclose(out, np.mean(x, axis=axis), rtol=1e-5)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_reduce_max(self, graph, axis):
        x = np.random.default_rng(4).standard_normal((4, 3)).astype(np.float32)
        out = run(ops.reduce_max(const(x), axis=axis))
        np.testing.assert_allclose(out, np.max(x, axis=axis))


class TestNNOps:
    def test_softmax_rows_sum_to_one(self, graph):
        x = const(np.random.default_rng(5).standard_normal((4, 6)) * 10)
        out = run(ops.softmax(x))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_softmax_stability_with_large_logits(self, graph):
        x = const(np.array([[1000.0, 1001.0]]))
        out = run(ops.softmax(x))
        assert np.all(np.isfinite(out))

    def test_log_softmax(self, graph):
        x = np.random.default_rng(6).standard_normal((3, 4)).astype(np.float32)
        out = run(ops.log_softmax(const(x)))
        expected = x - np.log(np.exp(x).sum(axis=-1, keepdims=True))
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_cross_entropy_matches_manual(self, graph):
        logits = np.array([[2.0, 1.0, 0.1], [0.0, 0.0, 0.0]],
                          dtype=np.float32)
        labels = np.array([0, 2], dtype=np.int32)
        out = run(ops.softmax_cross_entropy_with_logits(
            const(logits), ops.constant(labels)))
        probs = np.exp(logits) / np.exp(logits).sum(axis=-1, keepdims=True)
        expected = -np.log(probs[np.arange(2), labels])
        np.testing.assert_allclose(out, expected, rtol=1e-5)


class TestPlaceholdersAndFeeds:
    def test_feed_roundtrip(self, graph, runtime):
        x = ops.placeholder(repro.float32, (2,))
        y = ops.multiply(x, 2.0)
        sess = repro.Session(graph, runtime)
        np.testing.assert_allclose(sess.run(y, {x: [1.0, 2.0]}), [2.0, 4.0])

    def test_unfed_placeholder_raises(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        sess = repro.Session(graph, runtime)
        with pytest.raises(repro.EngineError, match="not fed"):
            sess.run(ops.negative(x))

    def test_feeding_non_placeholder_raises(self, graph, runtime):
        c = ops.constant(1.0)
        sess = repro.Session(graph, runtime)
        with pytest.raises(ValueError, match="placeholders"):
            sess.run(c, {c: 2.0})

    def test_feed_casts_dtype(self, graph, runtime):
        x = ops.placeholder(repro.float32, ())
        sess = repro.Session(graph, runtime)
        out = sess.run(ops.identity(x), {x: 3})
        assert out.dtype == np.float32
