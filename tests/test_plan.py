"""FramePlan compilation: caching, invalidation, slots, equivalence.

The contract under test: per ``(graph, op-set)`` body, everything the
scheduler derives from the graph (dependency counts, consumer lists,
registry resolution, signature prefixes, store masks) is computed exactly
once — the second and every later frame spawn performs **zero** graph
walks — while execution semantics stay bit-identical to the pre-plan
(seed) engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import ops
from repro.core.subgraph import SubGraph
from repro.graph.graph import Graph
from repro.runtime.batching import (Bucket, Coalescer, _SignatureState,
                                    batch_signature, signature_prefix)
from repro.runtime.engine import (Frame, Instance, _DepthPriorityReady,
                                  _FifoReady)
from repro.runtime.plan import plan_for, plan_for_fetches
from repro.runtime.server import RequestTicket

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _power_with_grad(graph):
    """f(x) = x^5 via recursion, plus its gradient (forward + backward
    bodies, Invoke + Cond + InvokeGrad + CacheLookup frames)."""
    with SubGraph("pow") as p:
        x = p.input(repro.float32, ())
        n = p.input(repro.int32, ())
        p.declare_outputs([(repro.float32, ())])
        p.output(ops.cond(ops.less_equal(n, 0),
                          lambda: ops.constant(1.0),
                          lambda: ops.multiply(x, p(x, n - 1))))
    xin = ops.placeholder(repro.float32, ())
    y = p(xin, ops.constant(5))
    grads, _ = repro.gradients(y, [xin])
    return xin, y, grads[0]


# -- plan compilation and caching ---------------------------------------------

class TestPlanCompilation:
    def test_plan_is_cached_per_graph(self, graph):
        a = ops.constant(1.0)
        b = ops.add(a, a)
        plan = plan_for(graph)
        assert plan_for(graph) is plan
        assert plan.num_slots == graph.num_operations
        assert plan.index_of[b.op.id] == plan.op_ids.index(b.op.id)

    def test_plan_matches_graph_wiring(self, graph):
        a = ops.placeholder(repro.float32, (2,))
        b = ops.tanh(a)
        c = ops.add(b, a)
        plan = plan_for(graph)
        for slot, op in enumerate(plan.ops):
            assert plan.dep_counts[slot] == graph.dependency_count(op)
        a_slot = plan.index_of[a.op.id]
        assert sorted(plan.consumer_slots[a_slot]) == sorted(
            [plan.index_of[b.op.id], plan.index_of[c.op.id]])
        c_slot = plan.index_of[c.op.id]
        assert plan.input_locs[c_slot] == (
            (plan.index_of[b.op.id], 0), (plan.index_of[a.op.id], 0))

    def test_plan_invalidated_by_add_op(self, graph):
        ops.constant(1.0)
        plan = plan_for(graph)
        ops.constant(2.0)
        assert plan_for(graph) is not plan

    def test_plan_invalidated_by_cache_filter(self, graph):
        out = ops.tanh(ops.constant(1.0))
        plan = plan_for(graph)
        slot = plan.index_of[out.op.id]
        assert plan.store_masks[slot] == (True,)
        graph.set_cache_filter({(out.op.id, 0)})
        fresh = plan_for(graph)
        assert fresh is not plan
        assert fresh.store_masks[fresh.index_of[out.op.id]] == (True,)
        other = next(op for op in fresh.ops if op.id != out.op.id)
        assert fresh.store_masks[fresh.index_of[other.id]] == (False,)

    def test_plan_invalidated_by_registry_mutation(self, graph):
        """Registering a batched kernel *after* a plan compiled must not
        leave the stale (never-batching) plan in the caches.

        Plans bake in resolved OpDefs and batch-signature prefixes
        (``None`` while no ``batched_kernel`` exists), so registry
        mutation bumps a version that drops compiled plans on the next
        ``plan_for``/``plan_for_fetches``."""
        from repro.graph import registry

        name = "PlanStaleProbe"
        if name not in registry.all_op_types():
            registry.register_op(
                name,
                infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
                kernel=lambda op, inputs, ctx: [np.tanh(inputs[0])])
        x = ops.placeholder(repro.float32, (2, 2), "x")
        probed = graph.add_op(name, [x], {}).outputs[0]
        plan = plan_for(graph)
        fetch_plan = plan_for_fetches(graph, {probed.op})
        slot = plan.index_of[probed.op.id]
        assert plan.sig_prefixes[slot] is None  # not batchable yet

        registry.register_batched_kernel(name, None)  # member-loop fallback
        try:
            fresh = plan_for(graph)
            assert fresh is not plan
            assert plan_for_fetches(graph, {probed.op}) is not fetch_plan
            assert fresh.sig_prefixes[fresh.index_of[probed.op.id]] \
                is not None
            # and the recompiled plan actually batches through a session
            wide = repro.Graph("stale_wide")
            with wide.as_default():
                xs = ops.placeholder(repro.float32, (2, 2), "xs")
                tails = [wide.add_op(name, [xs], {}).outputs[0]
                         for _ in range(6)]
                out = tails[0]
                for t in tails[1:]:
                    out = ops.add(out, t)
            sess = repro.Session(wide, repro.Runtime(), num_workers=4,
                                 batching=True)
            sess.run(out, {xs: np.zeros((2, 2), np.float32)})
            assert sess.last_stats.batches > 0
        finally:
            # leave the registry as this test found it for later tests
            registry.op_def(name).batched_kernel = None
            registry.op_def(name).meta.pop("batch_attrs", None)
            registry._bump_version()

    def test_fetch_plans_prune_and_memoize(self, graph):
        a = ops.constant(1.0)
        b = ops.tanh(a)
        ops.tanh(ops.constant(99.0))  # unrelated branch, must be pruned
        plan = plan_for_fetches(graph, {b.op})
        assert plan_for_fetches(graph, {b.op}) is plan
        assert set(plan.op_ids) == graph.reachable_from({b.op})
        assert plan.num_slots < graph.num_operations

    def test_signature_prefix_interned_across_graphs(self):
        g1, g2 = repro.Graph("sig1"), repro.Graph("sig2")
        with g1.as_default():
            t1 = ops.tanh(ops.placeholder(repro.float32))
        with g2.as_default():
            t2 = ops.tanh(ops.placeholder(repro.float32))
        assert signature_prefix(t1.op) == signature_prefix(t2.op)
        x = np.zeros((2, 2), np.float32)
        assert batch_signature(t1.op, [x]) == batch_signature(t2.op, [x])
        # element 0 stays the op type: the stats/reporting contract
        assert batch_signature(t1.op, [x])[0] == "Tanh"


# -- the no-graph-walk guarantee ----------------------------------------------

class TestNoGraphWalksAfterFirstSpawn:
    @pytest.mark.parametrize("engine", ["event", "threaded"])
    @pytest.mark.timeout(60)
    def test_second_run_does_zero_walks(self, engine, monkeypatch, graph,
                                        runtime):
        """Forward and backward recursive bodies, both engines: after the
        first run compiled the plans, later spawns of the same SubGraphs
        never call dependency_count/consumers again."""
        xin, y, grad = _power_with_grad(graph)
        sess = repro.Session(graph, runtime, record=True, engine=engine,
                             num_workers=4)
        first = sess.run([y, grad], {xin: 1.3})

        calls = {"dependency_count": 0, "consumers": 0}
        orig_dep = Graph.dependency_count
        orig_cons = Graph.consumers

        def counting_dep(self, op):
            calls["dependency_count"] += 1
            return orig_dep(self, op)

        def counting_cons(self):
            calls["consumers"] += 1
            return orig_cons(self)

        monkeypatch.setattr(Graph, "dependency_count", counting_dep)
        monkeypatch.setattr(Graph, "consumers", counting_cons)
        second = sess.run([y, grad], {xin: 1.3})
        assert calls == {"dependency_count": 0, "consumers": 0}
        assert first == second  # same feeds, bit-identical results

    def test_first_run_walks_each_body_once(self, monkeypatch, graph,
                                            runtime):
        """Plan compilation is once per body graph, not per frame."""
        xin, y, grad = _power_with_grad(graph)
        calls = {"consumers": 0}
        orig_cons = Graph.consumers

        def counting_cons(self):
            calls["consumers"] += 1
            return orig_cons(self)

        monkeypatch.setattr(Graph, "consumers", counting_cons)
        sess = repro.Session(graph, runtime, record=True, num_workers=4)
        sess.run([y, grad], {xin: 1.3})
        frames = sess.last_stats.frames_created
        assert frames > 20  # recursion really spawned many frames ...
        # ... but the graph was walked at most once per distinct body
        # (main graph + forward/backward bodies + cond branches)
        assert calls["consumers"] <= 12


# -- slotted hot-path classes -------------------------------------------------

class TestHotPathSlots:
    def test_hot_path_classes_reject_stray_attributes(self, graph):
        a = ops.constant(1.0)
        plan = plan_for(graph)
        frame = Frame(plan, {}, ("k",), 0, False, lambda f: None, None)
        instances = [
            plan,
            frame,
            Instance(a.op, frame, plan.index_of[a.op.id]),
            Bucket("sig", "Tanh", 0.0),
            Coalescer(),
            _SignatureState(width_ema=1.0, min_batch=2, timeout=0.001),
            _FifoReady(),
            _DepthPriorityReady(),
            RequestTicket(0, [], {}, True, None),
        ]
        for obj in instances:
            with pytest.raises(AttributeError, match="stray|attribute"):
                obj.stray = 1
            assert not hasattr(obj, "__dict__"), type(obj).__name__


# -- randomized-tree equivalence with the seed semantics ----------------------

def _random_tree(rng, max_nodes=23):
    """Random binary tree as (left, right, is_leaf, values) arrays."""
    left, right, is_leaf, values = [], [], [], []

    def gen(depth):
        i = len(left)
        left.append(0), right.append(0), is_leaf.append(1)
        values.append(rng.standard_normal())
        if depth >= 4 or len(left) >= max_nodes - 2 \
                or (depth > 0 and rng.random() < 0.35):
            return i
        is_leaf[i] = 0
        left[i] = gen(depth + 1)
        right[i] = gen(depth + 1)
        return i

    gen(0)
    return (np.asarray(left, np.int32), np.asarray(right, np.int32),
            np.asarray(is_leaf, np.int32),
            np.asarray(values, np.float32))


def _reference_eval(i, left, right, is_leaf, values):
    """Pure-numpy recursion: the seed semantics the engines must match
    bit for bit (same kernels: gather, add, tanh on float32)."""
    if is_leaf[i]:
        return values[i]
    l = _reference_eval(left[i], left, right, is_leaf, values)
    r = _reference_eval(right[i], left, right, is_leaf, values)
    return np.tanh(np.add(l, r))


class TestRandomTreePlanEquivalence:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @pytest.mark.timeout(120)
    def test_plan_execution_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        left, right, is_leaf, values = _random_tree(rng)
        expected = _reference_eval(0, left, right, is_leaf, values)

        graph = repro.Graph("treeval")
        with graph.as_default():
            left_t = ops.placeholder(repro.int32, left.shape, name="l")
            right_t = ops.placeholder(repro.int32, right.shape, name="r")
            leaf_t = ops.placeholder(repro.int32, is_leaf.shape, name="f")
            vals_t = ops.placeholder(repro.float32, values.shape, name="v")
            with SubGraph("treeval") as tv:
                idx = tv.input(repro.int32, ())
                tv.declare_outputs([(repro.float32, ())])
                tv.output(ops.cond(
                    ops.equal(ops.gather(leaf_t, idx), 1),
                    lambda: ops.gather(vals_t, idx),
                    lambda: ops.tanh(ops.add(tv(ops.gather(left_t, idx)),
                                             tv(ops.gather(right_t, idx))))))
            root = tv(ops.constant(0))
        feeds = {left_t: left, right_t: right, leaf_t: is_leaf,
                 vals_t: values}

        results = {}
        for label, kwargs in (
                ("event", dict(num_workers=8)),
                ("event_batched", dict(num_workers=8, batching=True)),
                ("threaded_batched", dict(num_workers=2, engine="threaded",
                                          batching=True))):
            sess = repro.Session(graph, repro.Runtime(), **kwargs)
            results[label] = sess.run(root, feeds)
        for label, value in results.items():
            assert np.array_equal(np.asarray(value), np.asarray(expected)), \
                (label, seed)
