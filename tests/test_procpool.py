"""The multi-process backend: what only procpool can get wrong.

Cross-executor bit-identity (values, gradients, serving, backpressure)
is covered by the parametrized matrices in ``test_executors.py`` and
``test_serving.py`` — procpool rides those automatically.  This file
covers the failure modes unique to crossing a process boundary:

* a **dead worker process** must surface as a sticky ``EngineError`` on
  the next ``drain()`` (mirroring the in-process sticky-fatal-error
  semantics), never a hang;
* **registry mutation after the pool forked** must not let workers
  execute stale plans — the version-stamp check flips the session to
  inline execution and keeps results correct;
* the **shared-memory transport** must actually carry tasks (shipped
  counters observable), and **measured data-parallel training** must
  produce gradients bit-identical at any replica count.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

import repro
from repro import ops
from repro.data import make_treebank
from repro.graph.registry import all_op_types, register_op, registry_version
from repro.runtime import EngineError, available_executors

pytestmark = pytest.mark.skipif(
    "procpool" not in available_executors(),
    reason="multi-process backend unavailable (no fork start method)")

#: 64 float32s = 256 bytes — exactly the default SHIP_MIN_BYTES, so the
#: SleepOp instance below is eligible for worker-process dispatch
_SHIP_WIDTH = 64


def _ensure_sleep_op():
    """A pure, shippable kernel that holds a worker for ``seconds``."""
    if "ProcpoolSleep" in all_op_types():
        return

    def kernel(op, inputs, ctx):
        time.sleep(op.attrs["seconds"])
        return [np.asarray(inputs[0])]

    register_op("ProcpoolSleep",
                infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
                kernel=kernel)


def _sleep_graph(seconds: float):
    _ensure_sleep_op()
    graph = repro.Graph("procpool_sleep")
    with graph.as_default():
        x = ops.placeholder(repro.float32, (_SHIP_WIDTH,), "x")
        out = graph.add_op("ProcpoolSleep", [x],
                           {"seconds": float(seconds)}).outputs[0]
    return graph, x, out


class TestWorkerCrash:
    @pytest.mark.timeout(60)
    def test_dead_worker_is_a_sticky_engine_error(self):
        """SIGKILL every worker mid-kernel: drain() raises (no hang) and
        keeps raising — the session is failed, like any fatal error."""
        graph, x, out = _sleep_graph(30.0)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine="procpool")
        engine = session._engine
        engine.begin_serving()
        try:
            feed = session._build_feed_map(
                {x: np.arange(_SHIP_WIDTH, dtype=np.float32)})
            engine.submit_root(graph, [out], feed, key=(0,),
                               on_complete=lambda values: None)
            deadline = time.time() + 10.0
            while engine._shipped_tasks == 0 and time.time() < deadline:
                time.sleep(0.02)
            assert engine._shipped_tasks == 1, "sleep task never shipped"
            time.sleep(0.2)  # let a worker actually pick it up
            for proc in engine._procs:
                os.kill(proc.pid, signal.SIGKILL)
            with pytest.raises(EngineError, match="died"):
                engine.drain()
            # sticky: the session stays failed on repeat drains
            with pytest.raises(EngineError):
                engine.drain()
        finally:
            engine.end_serving()

    @pytest.mark.timeout(60)
    def test_healthy_pool_round_trips_through_workers(self):
        """Control for the crash test: same shipped task, no kill —
        the value comes back through shared memory byte-exact."""
        graph, x, out = _sleep_graph(0.0)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine="procpool")
        engine = session._engine
        engine.begin_serving()
        try:
            sent = np.arange(_SHIP_WIDTH, dtype=np.float32)
            got = {}
            engine.submit_root(graph, [out], session._build_feed_map({x: sent}),
                               key=(0,),
                               on_complete=lambda values: got.update(v=values))
            engine.drain()
        finally:
            engine.end_serving()
        assert engine._shipped_tasks >= 1
        assert np.array_equal(got["v"][0], sent)


class TestRegistryStaleness:
    @pytest.mark.timeout(120)
    def test_mutation_after_pool_start_stops_shipping(self):
        """Registering an op after the pool forked must not reach stale
        worker plans: the stamp check reroutes everything inline, and
        results stay correct."""
        bank = make_treebank(num_train=2, num_val=1, vocab_size=20, seed=1)
        from repro.models import ModelConfig, TreeRNNSentiment
        from repro.data.batching import batch_trees

        def logits_under(engine_name, mutate=False):
            model = TreeRNNSentiment(
                ModelConfig(hidden=8, embed_dim=8, vocab_size=20),
                repro.Runtime())
            built = model.build_recursive(1)
            session = repro.Session(built.graph, model.runtime,
                                    num_workers=2, engine=engine_name)
            engine = session._engine
            engine.begin_serving()
            try:
                results = {}

                def submit(rid, tree):
                    feed = session._build_feed_map(
                        built.feed_dict(batch_trees([tree])))
                    engine.submit_root(
                        built.graph, [built.root_logits], feed, key=(rid,),
                        on_complete=lambda v, rid=rid: results.update(
                            {rid: v[0]}))

                submit(0, bank.train[0])
                engine.drain()
                if mutate:
                    assert registry_version() == engine._stamp
                    name = f"ProcpoolDummy{registry_version()}"
                    register_op(name, infer=lambda op: [],
                                kernel=lambda op, i, c: [])
                    assert registry_version() != engine._stamp
                    before = engine._shipped_tasks
                submit(1, bank.train[1])
                engine.drain()
                if mutate:
                    assert engine._registry_stale is True
                    # nothing shipped after the mutation was detected
                    assert engine._shipped_tasks == before
                return results
            finally:
                engine.end_serving()

        reference = logits_under("event")
        stale = logits_under("procpool", mutate=True)
        for rid, ref in reference.items():
            assert np.array_equal(ref, stale[rid]), rid

    @pytest.mark.timeout(120)
    def test_fresh_pool_restamps_after_mutation(self):
        """A pool started *after* a registry mutation is not stale: the
        stamp is captured at fork time, per session."""
        _ensure_sleep_op()  # mutates the registry (first test run only)
        graph, x, out = _sleep_graph(0.0)
        session = repro.Session(graph, repro.Runtime(), num_workers=1,
                                engine="procpool")
        engine = session._engine
        engine.begin_serving()
        try:
            assert engine._stamp == registry_version()
            sent = np.arange(_SHIP_WIDTH, dtype=np.float32)
            got = {}
            engine.submit_root(graph, [out], session._build_feed_map({x: sent}),
                               key=(0,),
                               on_complete=lambda values: got.update(v=values))
            engine.drain()
            assert engine._registry_stale is False
            assert engine._shipped_tasks >= 1
        finally:
            engine.end_serving()
        assert np.array_equal(got["v"][0], sent)


class TestMeasuredDataParallel:
    @pytest.mark.timeout(300)
    def test_gradients_bit_identical_at_any_replica_count(self):
        """Measured procpool cluster: same global batch through M=1 and
        M=2 worker processes accumulates the same gradient, bit for bit
        (canonical per-tree frame keys make the reduction order
        independent of placement)."""
        from repro.distributed.cluster import DataParallelCluster
        from repro.models import ModelConfig, TreeRNNSentiment
        from repro.nn import SGD

        bank = make_treebank(num_train=4, num_val=1, vocab_size=24, seed=7)

        def step_at(num_machines):
            runtime = repro.Runtime()
            model = TreeRNNSentiment(
                ModelConfig(hidden=8, embed_dim=8, vocab_size=24), runtime)
            with DataParallelCluster(model, global_batch=4,
                                     num_machines=num_machines,
                                     optimizer=SGD(0.05), runtime=runtime,
                                     execution="procpool") as cluster:
                loss, step_time = cluster.train_step(bank.train[:4])
                names = [v.name for v in runtime.trainable_variables()]
                grads = {n: np.copy(runtime.accumulators.read(n))
                         for n in names}
                params = {n: np.copy(runtime.variables.read(n))
                          for n in names}
            assert step_time > 0.0
            return loss, grads, params

        loss1, grads1, params1 = step_at(1)
        loss2, grads2, params2 = step_at(2)
        assert loss1 == loss2
        assert set(grads1) == set(grads2)
        for name in grads1:
            assert np.array_equal(grads1[name], grads2[name]), name
            # and the applied update (optimizer state) agrees too
            assert np.array_equal(params1[name], params2[name]), name

    @pytest.mark.timeout(120)
    def test_invalid_modes_rejected(self):
        from repro.distributed.cluster import DataParallelCluster
        from repro.models import ModelConfig, TreeRNNSentiment
        from repro.nn import SGD

        runtime = repro.Runtime()
        model = TreeRNNSentiment(
            ModelConfig(hidden=4, embed_dim=4, vocab_size=10), runtime)
        with pytest.raises(ValueError, match="unknown execution mode"):
            DataParallelCluster(model, global_batch=2, num_machines=1,
                                optimizer=SGD(0.05), runtime=runtime,
                                execution="quantum")
