"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import ops
from repro.core.cache import ROOT_KEY, ValueCache, child_key
from repro.core.subgraph import SubGraph
from repro.data import (Tree, batch_trees, build_shape, label_tree,
                        make_treebank)
from repro.data.vocab import Vocabulary
from repro.ops.tensor_array import TensorArrayValue
from repro.runtime.cost_model import unit_cost

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


small_floats = st.floats(min_value=-10.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False, width=32)


class TestAlgebraicProperties:
    @SETTINGS
    @given(st.lists(small_floats, min_size=1, max_size=8),
           st.lists(small_floats, min_size=1, max_size=8))
    def test_add_commutes(self, xs, ys):
        n = min(len(xs), len(ys))
        a = np.array(xs[:n], dtype=np.float32)
        b = np.array(ys[:n], dtype=np.float32)
        graph = repro.Graph("prop")
        with graph.as_default():
            lhs = ops.add(ops.constant(a), ops.constant(b))
            rhs = ops.add(ops.constant(b), ops.constant(a))
        sess = repro.Session(graph, repro.Runtime())
        np.testing.assert_allclose(sess.run(lhs), sess.run(rhs))

    @SETTINGS
    @given(st.lists(small_floats, min_size=2, max_size=12))
    def test_reduce_sum_matches_numpy(self, xs):
        a = np.array(xs, dtype=np.float32)
        graph = repro.Graph("prop")
        with graph.as_default():
            out = ops.reduce_sum(ops.constant(a))
        result = repro.Session(graph, repro.Runtime()).run(out)
        assert result == pytest.approx(a.sum(), rel=1e-4, abs=1e-4)

    @SETTINGS
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=6))
    def test_gather_then_sum_equals_indexed_sum(self, rows, cols):
        rng = np.random.default_rng(rows * 7 + cols)
        params = rng.standard_normal((rows, cols)).astype(np.float32)
        idx = rng.integers(0, rows, size=4).astype(np.int32)
        graph = repro.Graph("prop")
        with graph.as_default():
            out = ops.reduce_sum(ops.gather(ops.constant(params),
                                            ops.constant(idx)))
        result = repro.Session(graph, repro.Runtime()).run(out)
        assert result == pytest.approx(params[idx].sum(), rel=1e-4)


class TestGatherScatterAdjoint:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=10))
    def test_gather_grad_is_scatter_add(self, n_idx, n_rows):
        """<gather(x, i), y> == <x, scatter_add(y, i)> (adjoint property)."""
        rng = np.random.default_rng(n_idx * 31 + n_rows)
        x = rng.standard_normal((n_rows, 3)).astype(np.float32)
        idx = rng.integers(0, n_rows, size=n_idx).astype(np.int32)
        y = rng.standard_normal((n_idx, 3)).astype(np.float32)
        graph = repro.Graph("adj")
        with graph.as_default():
            xt = ops.placeholder(repro.float32, (n_rows, 3))
            inner = ops.reduce_sum(ops.multiply(
                ops.gather(xt, ops.constant(idx)), ops.constant(y)))
            grads, _ = repro.gradients(inner, [xt])
        sess = repro.Session(graph, repro.Runtime())
        grad = sess.run(grads[0], {xt: x})
        scattered = np.zeros_like(x)
        np.add.at(scattered, idx, y)
        np.testing.assert_allclose(grad, scattered, rtol=1e-4, atol=1e-5)


class TestFrameKeys:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=6),
           st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=6))
    def test_distinct_paths_distinct_keys(self, path_a, path_b):
        key_a, key_b = ROOT_KEY, ROOT_KEY
        for p in path_a:
            key_a = child_key(key_a, p)
        for p in path_b:
            key_b = child_key(key_b, p)
        assert (key_a == key_b) == (path_a == path_b)

    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 5),
                              st.integers(0, 3)),
                    min_size=1, max_size=30, unique=True))
    def test_cache_roundtrip(self, entries):
        cache = ValueCache()
        for i, (key_part, op_id, out_idx) in enumerate(entries):
            cache.store((key_part,), 1, op_id, out_idx, i)
        for i, (key_part, op_id, out_idx) in enumerate(entries):
            assert cache.lookup((key_part,), 1, op_id, out_idx) == i


class TestTensorArrayProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=10, unique=True))
    def test_write_once_reads_back(self, indices):
        ta = TensorArrayValue.empty(10, (2,))
        for i in indices:
            ta = ta.write(i, np.full(2, float(i), dtype=np.float32))
        for i in indices:
            np.testing.assert_allclose(ta.read(i), np.full(2, float(i)))

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                    max_size=12))
    def test_add_accumulates(self, indices):
        ta = TensorArrayValue.empty(5, ())
        for i in indices:
            ta = ta.add(i, np.float32(1.0))
        for i in range(5):
            assert ta.read(i) == pytest.approx(indices.count(i))

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=0,
                    max_size=6, unique=True),
           st.lists(st.integers(min_value=0, max_value=4), min_size=0,
                    max_size=6, unique=True))
    def test_combine_is_slotwise_sum(self, idx_a, idx_b):
        a = TensorArrayValue.empty(5, ())
        b = TensorArrayValue.empty(5, ())
        for i in idx_a:
            a = a.write(i, np.float32(2.0))
        for i in idx_b:
            b = b.write(i, np.float32(3.0))
        combined = a.combine(b)
        for i in range(5):
            expected = (2.0 if i in idx_a else 0.0) + (3.0 if i in idx_b
                                                       else 0.0)
            assert combined.read(i) == pytest.approx(expected)


class TestTreeProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=40),
           st.sampled_from(["natural", "balanced", "moderate", "linear"]))
    def test_tree_invariants(self, n_words, shape):
        rng = np.random.default_rng(n_words)
        words = list(rng.integers(0, 30, size=n_words))
        root = build_shape(words, shape, rng)
        tree = Tree(root)
        assert tree.num_nodes == 2 * n_words - 1
        assert tree.num_leaves == n_words
        assert tree.words() == [int(w) for w in words]
        min_depth = int(np.ceil(np.log2(n_words))) + 1 if n_words > 1 else 1
        assert min_depth <= tree.depth <= n_words if n_words > 1 \
            else tree.depth == 1

    @SETTINGS
    @given(st.integers(min_value=2, max_value=30))
    def test_topological_indexing(self, n_words):
        rng = np.random.default_rng(n_words * 3)
        words = list(rng.integers(0, 30, size=n_words))
        root = build_shape(words, "natural", rng)
        arrays = Tree(root).to_arrays()
        for i in range(arrays.num_nodes):
            if not arrays.is_leaf[i]:
                assert arrays.children[i, 0] < i
                assert arrays.children[i, 1] < i

    @SETTINGS
    @given(st.integers(min_value=2, max_value=25))
    def test_labeling_is_deterministic(self, n_words):
        vocab = Vocabulary.build(40, np.random.default_rng(0))
        rng1 = np.random.default_rng(n_words)
        words = list(rng1.integers(0, 40, size=n_words))
        roots = [build_shape(words, "balanced", np.random.default_rng(1))
                 for _ in range(2)]
        scores = [label_tree(r, vocab) for r in roots]
        assert scores[0] == scores[1]

    @SETTINGS
    @given(st.integers(min_value=1, max_value=5))
    def test_batch_padding_roundtrip(self, batch_size):
        bank = make_treebank(num_train=batch_size, num_val=0, vocab_size=30,
                             max_words=12, mean_log_words=2.0,
                             seed=batch_size)
        batch = batch_trees(bank.train)
        for b, tree in enumerate(batch.trees):
            arrays = tree.to_arrays()
            n = arrays.num_nodes
            np.testing.assert_array_equal(batch.labels[b, :n], arrays.labels)
            np.testing.assert_array_equal(batch.is_leaf[b, :n],
                                          arrays.is_leaf)
            assert batch.root[b] == arrays.root


class TestSchedulerProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, width, workers):
        """Unit-cost diamond: makespan within classic list-scheduling
        bounds: ceil(width/workers) <= middle layer time <= width."""
        graph = repro.Graph("sched_prop")
        with graph.as_default():
            src = ops.constant(1.0)
            mids = [ops.negative(src) for _ in range(width)]
            total = mids[0]
            for m in mids[1:]:
                total = ops.add(total, m)
        sess = repro.Session(graph, repro.Runtime(), num_workers=workers,
                             cost_model=unit_cost())
        sess.run(total)
        makespan = sess.last_stats.virtual_time
        total_ops = 1 + width + max(0, width - 1)
        # critical path: const -> one neg -> chain of (width-1) adds;
        # work bound: total unit ops over the worker pool
        lower = max(width + 1, total_ops / workers)
        upper = total_ops  # fully serialized
        assert lower - 1e-9 <= makespan <= upper + 1e-9

    @SETTINGS
    @given(st.integers(min_value=2, max_value=9))
    def test_recursion_depth_equals_input(self, depth):
        graph = repro.Graph("depth_prop")
        with graph.as_default():
            with SubGraph("chain") as chain:
                n = chain.input(repro.int32, ())
                chain.declare_outputs([(repro.int32, ())])
                chain.output(ops.cond(ops.less_equal(n, 0),
                                      lambda: ops.constant(0),
                                      lambda: ops.add(chain(n - 1),
                                                      ops.constant(1))))
            out = chain(ops.constant(depth))
        sess = repro.Session(graph, repro.Runtime())
        assert sess.run(out) == depth
        # invoke + branch frames alternate: max depth ~ 2*depth
        assert sess.last_stats.max_frame_depth >= depth


class TestEngineEquivalenceProperty:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=30),
           st.integers(min_value=1, max_value=6))
    def test_worker_count_never_changes_values(self, seed, workers):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((3, 3)).astype(np.float32)
        graph = repro.Graph("eq_prop")
        with graph.as_default():
            t = ops.constant(a)
            out = ops.reduce_sum(ops.tanh(ops.matmul(t, ops.transpose(t))))
        one = repro.Session(graph, repro.Runtime(), num_workers=1).run(out)
        many = repro.Session(graph, repro.Runtime(),
                             num_workers=workers).run(out)
        assert one == pytest.approx(many, rel=1e-6)
