"""Tests for SubGraph / InvokeOp: the paper's core contribution."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.subgraph import SubGraph, SubGraphError


def factorial_subgraph():
    with SubGraph("fact") as fact:
        n = fact.input(repro.int32, ())
        fact.declare_outputs([(repro.int32, ())])
        fact.output(ops.cond(ops.less_equal(n, 1),
                             lambda: ops.constant(1),
                             lambda: ops.multiply(n, fact(n - 1))))
    return fact


class TestSubGraphDefinition:
    def test_simple_definition_and_call(self, graph, runtime):
        with SubGraph("double") as double:
            x = double.input(repro.float32, ())
            double.output(ops.multiply(x, 2.0))
        out = double(ops.constant(21.0))
        assert repro.Session(graph, runtime).run(out) == pytest.approx(42.0)

    def test_multiple_inputs_outputs(self, graph, runtime):
        with SubGraph("swap") as swap:
            a = swap.input(repro.float32, ())
            b = swap.input(repro.float32, ())
            swap.output(b, a)
        x, y = swap(ops.constant(1.0), ops.constant(2.0))
        sess = repro.Session(graph, runtime)
        assert sess.run([x, y]) == [2.0, 1.0]

    def test_no_output_raises(self, graph):
        with pytest.raises(SubGraphError, match="output"):
            with SubGraph("bad"):
                pass

    def test_double_output_raises(self, graph):
        with pytest.raises(SubGraphError, match="already set"):
            with SubGraph("bad") as sg:
                sg.output(ops.constant(1.0))
                sg.output(ops.constant(2.0))

    def test_wrong_arg_count_raises(self, graph):
        with SubGraph("one") as one:
            one.input(repro.float32, ())
            one.output(ops.constant(1.0))
        with pytest.raises(SubGraphError, match="takes 1 inputs"):
            one(ops.constant(1.0), ops.constant(2.0))

    def test_wrong_arg_dtype_raises(self, graph):
        with SubGraph("flt") as flt:
            x = flt.input(repro.float32, ())
            flt.output(ops.identity(x))
        with pytest.raises(SubGraphError, match="dtype"):
            flt(ops.constant(1))

    def test_declared_output_mismatch_raises(self, graph):
        with pytest.raises(SubGraphError, match="dtype"):
            with SubGraph("bad") as sg:
                sg.declare_outputs([(repro.float32, ())])
                sg.output(ops.constant(1))

    def test_recursion_without_declaration_raises(self, graph):
        with pytest.raises(SubGraphError, match="declare_outputs"):
            with SubGraph("rec") as rec:
                n = rec.input(repro.int32, ())
                rec(n)  # forward declaration missing

    def test_call_from_other_graph_after_finalize(self, runtime):
        g1 = repro.Graph("def_graph")
        with g1.as_default():
            with SubGraph("triple") as triple:
                x = triple.input(repro.float32, ())
                triple.output(ops.multiply(x, 3.0))
        g2 = repro.Graph("call_graph")
        with g2.as_default():
            out = triple(ops.constant(2.0))
        assert repro.Session(g2, runtime).run(out) == pytest.approx(6.0)

    def test_finalized_graph_is_frozen(self, graph):
        with SubGraph("frozen") as sg:
            x = sg.input(repro.float32, ())
            sg.output(ops.identity(x))
        assert sg.graph.finalized


class TestCaptures:
    def test_capture_of_outer_tensor(self, graph, runtime):
        scale = ops.placeholder(repro.float32, ())
        with SubGraph("scaled") as scaled:
            x = scaled.input(repro.float32, ())
            scaled.output(ops.multiply(x, scale))
        out = scaled(ops.constant(3.0))
        sess = repro.Session(graph, runtime)
        assert sess.run(out, {scale: 4.0}) == pytest.approx(12.0)
        assert len(scaled.captures) == 1

    def test_capture_memoized(self, graph):
        t = ops.constant(2.0)
        with SubGraph("memo") as sg:
            x = sg.input(repro.float32, ())
            sg.output(ops.add(ops.multiply(x, t), t))
        assert len(sg.captures) == 1

    def test_capture_through_nested_branch(self, graph, runtime):
        outer_value = ops.placeholder(repro.float32, ())
        with SubGraph("nested") as sg:
            x = sg.input(repro.float32, ())
            sg.output(ops.cond(ops.greater(x, 0.0),
                               lambda: ops.multiply(x, outer_value),
                               lambda: ops.negative(outer_value)))
        out = sg(ops.constant(2.0))
        sess = repro.Session(graph, runtime)
        assert sess.run(out, {outer_value: 5.0}) == pytest.approx(10.0)

    def test_variables_need_no_capture(self, graph, runtime):
        v = repro.Variable("cap_var", np.float32(7.0), runtime=runtime)
        with SubGraph("uses_var") as sg:
            x = sg.input(repro.float32, ())
            sg.output(ops.multiply(x, v.read()))
        out = sg(ops.constant(2.0))
        assert repro.Session(graph, runtime).run(out) == pytest.approx(14.0)
        assert len(sg.captures) == 0


class TestRecursion:
    def test_factorial(self, graph, runtime):
        fact = factorial_subgraph()
        out = fact(ops.constant(6))
        assert repro.Session(graph, runtime).run(out) == 720

    def test_factorial_base_case(self, graph, runtime):
        fact = factorial_subgraph()
        out = fact(ops.constant(0))
        assert repro.Session(graph, runtime).run(out) == 1

    def test_fibonacci_parallel_recursion(self, graph, runtime):
        with SubGraph("fib") as fib:
            n = fib.input(repro.int32, ())
            fib.declare_outputs([(repro.int32, ())])
            fib.output(ops.cond(ops.less_equal(n, 1),
                                lambda: ops.identity(n),
                                lambda: ops.add(fib(n - 1), fib(n - 2))))
        out = fib(ops.constant(10))
        sess = repro.Session(graph, runtime, num_workers=8)
        assert sess.run(out) == 55

    def test_recursion_depth_guard(self, graph, runtime):
        with SubGraph("forever") as forever:
            n = forever.input(repro.int32, ())
            forever.declare_outputs([(repro.int32, ())])
            forever.output(forever(ops.add(n, 1)))
        out = forever(ops.constant(0))
        sess = repro.Session(graph, runtime, max_depth=50)
        with pytest.raises(repro.EngineError, match="recursion limit"):
            sess.run(out)

    def test_mutual_recursion(self, graph, runtime):
        # is_even / is_odd by mutual recursion within one episode
        with SubGraph("is_even") as is_even:
            n = is_even.input(repro.int32, ())
            is_even.declare_outputs([(repro.int32, ())])
            with SubGraph("is_odd") as is_odd:
                m = is_odd.input(repro.int32, ())
                is_odd.declare_outputs([(repro.int32, ())])
                is_odd.output(ops.cond(ops.less_equal(m, 0),
                                       lambda: ops.constant(0),
                                       lambda: is_even(m - 1)))
            is_even.output(ops.cond(ops.less_equal(n, 0),
                                    lambda: ops.constant(1),
                                    lambda: is_odd(n - 1)))
        out_even = is_even(ops.constant(10))
        out_odd = is_even(ops.constant(7))
        sess = repro.Session(graph, runtime, num_workers=4)
        assert sess.run(out_even) == 1
        assert sess.run(out_odd) == 0

    def test_recursive_capture(self, graph, runtime):
        # recursion with an outer value used at every level
        step = ops.placeholder(repro.float32, ())
        with SubGraph("sum_to") as sum_to:
            n = sum_to.input(repro.int32, ())
            sum_to.declare_outputs([(repro.float32, ())])
            sum_to.output(ops.cond(
                ops.less_equal(n, 0),
                lambda: ops.constant(0.0),
                lambda: ops.add(step, sum_to(n - 1))))
        out = sum_to(ops.constant(5))
        sess = repro.Session(graph, runtime)
        assert sess.run(out, {step: 1.5}) == pytest.approx(7.5)

    def test_tree_reduction(self, graph, runtime):
        # sum over a binary tree given as arrays, via recursion
        values = ops.placeholder(repro.float32, (None,))
        children = ops.placeholder(repro.int32, (None, 2))
        is_leaf = ops.placeholder(repro.bool_, (None,))
        with SubGraph("tree_sum") as tree_sum:
            idx = tree_sum.input(repro.int32, ())
            tree_sum.declare_outputs([(repro.float32, ())])

            def leaf():
                return ops.gather(values, idx)

            def internal():
                pair = ops.gather(children, idx)
                return ops.add(tree_sum(ops.gather(pair, 0)),
                               ops.gather(values, idx)
                               + tree_sum(ops.gather(pair, 1)))

            tree_sum.output(ops.cond(ops.gather(is_leaf, idx), leaf,
                                     internal))
        out = tree_sum(ops.constant(2))
        #      node2(+1.0)
        #     /    \
        #  leaf0=2  leaf1=3     total = 2 + 3 + 1 = 6
        sess = repro.Session(graph, runtime, num_workers=4)
        result = sess.run(out, {
            values: np.array([2.0, 3.0, 1.0], dtype=np.float32),
            children: np.array([[0, 0], [0, 0], [0, 1]], dtype=np.int32),
            is_leaf: np.array([True, True, False])})
        assert result == pytest.approx(6.0)

    def test_multi_output_recursion(self, graph, runtime):
        # returns (depth_sum, node_count) per call
        with SubGraph("count") as count:
            n = count.input(repro.int32, ())
            count.declare_outputs([(repro.int32, ()), (repro.int32, ())])

            def base():
                return ops.constant(0), ops.constant(1)

            def rec():
                s, c = count(n - 1)
                return ops.add(s, n), ops.add(c, 1)

            count.output(*ops.cond(ops.less_equal(n, 0), base, rec))
        s, c = count(ops.constant(4))
        sess = repro.Session(graph, runtime)
        assert sess.run([s, c]) == [10, 5]


class TestExecutionStats:
    def test_frames_form_a_tree(self, graph, runtime):
        fact = factorial_subgraph()
        out = fact(ops.constant(5))
        sess = repro.Session(graph, runtime)
        sess.run(out)
        stats = sess.last_stats
        # 5 invoke frames + 5 branch frames (plus root is not counted as
        # spawned): at least 10, and depth reflects nesting
        assert stats.frames_created >= 10
        assert stats.max_frame_depth >= 5

    def test_parallel_speedup_in_virtual_time(self, graph, runtime):
        with SubGraph("fib") as fib:
            n = fib.input(repro.int32, ())
            fib.declare_outputs([(repro.int32, ())])
            fib.output(ops.cond(ops.less_equal(n, 1),
                                lambda: ops.identity(n),
                                lambda: ops.add(fib(n - 1), fib(n - 2))))
        out = fib(ops.constant(11))
        t1 = repro.Session(graph, runtime, num_workers=1)
        t1.run(out)
        t8 = repro.Session(graph, runtime, num_workers=8)
        t8.run(out)
        assert t8.last_stats.virtual_time < t1.last_stats.virtual_time / 2
