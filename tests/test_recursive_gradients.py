"""Recursive backpropagation: gradients through InvokeOps and the cache."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.autodiff import differentiate_subgraph
from repro.core.subgraph import SubGraph


def power_subgraph():
    """f(x, n) = x^n via recursion."""
    with SubGraph("pow") as p:
        x = p.input(repro.float32, ())
        n = p.input(repro.int32, ())
        p.declare_outputs([(repro.float32, ())])
        p.output(ops.cond(ops.less_equal(n, 0),
                          lambda: ops.constant(1.0),
                          lambda: ops.multiply(x, p(x, n - 1))))
    return p


class TestRecursiveGradients:
    def test_power_rule(self, graph, runtime):
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y = p(x, ops.constant(5))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        value, grad = sess.run([y, grads[0]], {x: 1.3})
        assert value == pytest.approx(1.3 ** 5, rel=1e-5)
        assert grad == pytest.approx(5 * 1.3 ** 4, rel=1e-5)

    def test_gradient_at_base_case(self, graph, runtime):
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y = p(x, ops.constant(0))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        assert sess.run(grads[0], {x: 2.0}) == pytest.approx(0.0)

    def test_branching_recursion_gradient(self, graph, runtime):
        # f(x, d) = x if d==0 else f(x,d-1)^2  => f = x^(2^d)
        with SubGraph("sq") as sq:
            x = sq.input(repro.float32, ())
            d = sq.input(repro.int32, ())
            sq.declare_outputs([(repro.float32, ())])
            sq.output(ops.cond(ops.less_equal(d, 0),
                               lambda: ops.identity(x),
                               lambda: ops.square(sq(x, d - 1))))
        xin = ops.placeholder(repro.float32, ())
        y = sq(xin, ops.constant(3))
        grads, _ = repro.gradients(y, [xin])
        sess = repro.Session(graph, runtime, record=True)
        x0 = 1.1
        value, grad = sess.run([y, grads[0]], {xin: x0})
        assert value == pytest.approx(x0 ** 8, rel=1e-5)
        assert grad == pytest.approx(8 * x0 ** 7, rel=1e-4)

    def test_two_call_sites_gradient(self, graph, runtime):
        # full binary recursion: f(x, d) = x at d=0 else f(l)+f(r)
        # f(x, d) = 2^d * x
        with SubGraph("tree") as tree:
            x = tree.input(repro.float32, ())
            d = tree.input(repro.int32, ())
            tree.declare_outputs([(repro.float32, ())])
            tree.output(ops.cond(ops.less_equal(d, 0),
                                 lambda: ops.identity(x),
                                 lambda: ops.add(tree(x, d - 1),
                                                 tree(x, d - 1))))
        xin = ops.placeholder(repro.float32, ())
        y = tree(xin, ops.constant(4))
        grads, _ = repro.gradients(y, [xin])
        sess = repro.Session(graph, runtime, record=True, num_workers=8)
        assert sess.run(grads[0], {xin: 1.0}) == pytest.approx(16.0)

    def test_variable_gradients_across_frames(self, graph, runtime):
        w = repro.Variable("rec_w", np.float32(1.5), runtime=runtime)
        with SubGraph("chain") as chain:
            n = chain.input(repro.int32, ())
            chain.declare_outputs([(repro.float32, ())])
            chain.output(ops.cond(
                ops.less_equal(n, 0),
                lambda: ops.constant(1.0),
                lambda: ops.multiply(w.read(), chain(n - 1))))
        y = chain(ops.constant(4))  # w^4
        _, updates = repro.gradients(y, [])
        sess = repro.Session(graph, runtime, record=True)
        sess.run([y] + [op.outputs[-1] for op in updates])
        # dy/dw = 4 w^3
        assert runtime.accumulators.read("rec_w") == pytest.approx(
            4 * 1.5 ** 3, rel=1e-5)

    def test_capture_gradient_through_recursion(self, graph, runtime):
        scale = ops.placeholder(repro.float32, ())
        with SubGraph("scaled_sum") as sg:
            n = sg.input(repro.int32, ())
            sg.declare_outputs([(repro.float32, ())])
            sg.output(ops.cond(
                ops.less_equal(n, 0),
                lambda: ops.constant(0.0),
                lambda: ops.add(ops.square(scale), sg(n - 1))))
        y = sg(ops.constant(3))  # 3 * scale^2
        grads, _ = repro.gradients(y, [scale])
        sess = repro.Session(graph, runtime, record=True)
        assert sess.run(grads[0], {scale: 2.0}) == pytest.approx(12.0,
                                                                 rel=1e-5)

    def test_gradient_matches_unrolled_equivalent(self, graph, runtime):
        # recursive f(x,3)=x^3 vs hand-unrolled x*x*x gradients
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y_rec = p(x, ops.constant(3))
        y_unrolled = ops.multiply(x, ops.multiply(x, x))
        g_rec, _ = repro.gradients(y_rec, [x])
        g_unr, _ = repro.gradients(y_unrolled, [x])
        sess = repro.Session(graph, runtime, record=True)
        rec, unr = sess.run([g_rec[0], g_unr[0]], {x: 0.7})
        assert rec == pytest.approx(unr, rel=1e-5)

    def test_second_run_reuses_graph(self, graph, runtime):
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y = p(x, ops.constant(4))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        for x0 in (0.5, 1.0, 2.0):
            assert sess.run(grads[0], {x: x0}) == pytest.approx(
                4 * x0 ** 3, rel=1e-4)


class TestDifferentiateSubgraph:
    def test_grad_subgraph_cached(self, graph):
        p = power_subgraph()
        bg1 = differentiate_subgraph(p)
        bg2 = differentiate_subgraph(p)
        assert bg1 is bg2

    def test_grad_subgraph_is_backward(self, graph):
        p = power_subgraph()
        bg = differentiate_subgraph(p)
        assert bg.is_backward
        assert bg.graph.is_backward_body

    def test_recursive_backward_contains_invoke_grad(self, graph):
        p = power_subgraph()
        differentiate_subgraph(p)
        # the backward of the recursive branch holds an InvokeGrad at the
        # forward call-site position
        branch = None
        for op in p.graph.operations:
            if op.op_type == "Cond":
                branch = op.attrs["false_subgraph"]
        grad_branch = branch.grad_subgraph
        types = {op.op_type for op in grad_branch.graph.operations}
        assert "InvokeGrad" in types

    def test_cache_filter_installed(self, graph):
        p = power_subgraph()
        differentiate_subgraph(p)
        assert getattr(p.graph, "cache_filter", None) is not None

    def test_backward_subgraph_has_no_captures(self, graph):
        p = power_subgraph()
        bg = differentiate_subgraph(p)
        assert bg.captures == []

    def test_undifferentiated_unfinalized_raises(self, graph):
        sg = SubGraph("open")
        with pytest.raises(Exception):
            differentiate_subgraph(sg)


class TestBackpropCache:
    def test_cache_populated_then_cleared_between_runs(self, graph, runtime):
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y = p(x, ops.constant(3))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True)
        sess.run(grads[0], {x: 1.0})
        stores_first = runtime.cache.stores
        assert stores_first > 0
        sess.run(grads[0], {x: 1.0})
        # cleared at the start of each run: table does not grow unboundedly
        assert len(runtime.cache) <= stores_first

    def test_inference_mode_skips_cache(self, graph, runtime):
        p = power_subgraph()
        y = p(ops.constant(2.0), ops.constant(5))
        sess = repro.Session(graph, runtime, record=False)
        sess.run(y)
        assert runtime.cache.stores == 0

    def test_missing_forward_pass_gives_clear_error(self, graph, runtime):
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y = p(x, ops.constant(2))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=False)
        with pytest.raises(repro.EngineError, match="record=True"):
            sess.run(grads[0], {x: 1.0})


class TestGradientsUnderBatching:
    """Backprop through the coalescing scheduler (batch-safe taping).

    Forward values under ``batching=True`` are bit-identical, so the tape
    (backprop value cache) holds exactly the same activations; gradients
    may differ only by accumulation order, and must match analytic /
    finite-difference references.
    """

    def _model_setup(self, model_cls, config, batch_size=2, seed=13):
        from repro.data import make_treebank
        from repro.data.batching import batch_trees

        runtime = repro.Runtime()
        model = model_cls(config, runtime)
        bank = make_treebank(num_train=max(4, batch_size), num_val=2,
                             vocab_size=config.vocab_size, seed=seed)
        built = model.build_recursive(batch_size)
        feeds = built.feed_dict(batch_trees(bank.train[:batch_size]))
        _, updates = repro.gradients(built.loss, [])
        fetches = [built.loss] + [op.outputs[-1] for op in updates]
        return model, built, feeds, fetches

    def _accumulated_grads(self, model, built, feeds, fetches, batching):
        model.runtime.accumulators.zero()
        sess = repro.Session(built.graph, model.runtime, num_workers=36,
                             record=True, batching=batching)
        loss = sess.run(fetches, feeds)[0]
        grads = {v.name: np.array(model.runtime.accumulators.read(v.name))
                 for v in model.variables}
        return float(loss), grads, sess.last_stats

    def test_power_rule_through_batched_scheduler(self, graph, runtime):
        p = power_subgraph()
        x = ops.placeholder(repro.float32, ())
        y = p(x, ops.constant(5))
        grads, _ = repro.gradients(y, [x])
        sess = repro.Session(graph, runtime, record=True, num_workers=8,
                             batching=True)
        value, grad = sess.run([y, grads[0]], {x: 1.3})
        assert value == pytest.approx(1.3 ** 5, rel=1e-5)
        assert grad == pytest.approx(5 * 1.3 ** 4, rel=1e-5)

    @pytest.mark.parametrize("model_key", ["TreeLSTM", "RNTN"])
    def test_batched_matches_unbatched_gradients(self, model_key):
        from repro.models import (RNTNSentiment, TreeLSTMSentiment,
                                  tree_lstm_config)
        from repro.models.common import ModelConfig

        if model_key == "TreeLSTM":
            setup = (TreeLSTMSentiment,
                     tree_lstm_config(hidden=8, embed_dim=6, vocab_size=40))
        else:
            setup = (RNTNSentiment,
                     ModelConfig(hidden=6, embed_dim=6, vocab_size=40))
        model, built, feeds, fetches = self._model_setup(*setup)
        loss0, ref, _ = self._accumulated_grads(model, built, feeds, fetches,
                                                batching=False)
        loss1, got, stats = self._accumulated_grads(model, built, feeds,
                                                    fetches, batching=True)
        assert stats.batches > 0  # forward AND backward frames fused
        assert loss1 == pytest.approx(loss0, rel=1e-6)
        for name in ref:
            np.testing.assert_allclose(
                got[name], ref[name], rtol=1e-5, atol=1e-6,
                err_msg=f"gradient of {name} diverged under batching")

    @pytest.mark.parametrize("model_key", ["TreeLSTM", "RNTN"])
    def test_finite_difference_under_batching(self, model_key):
        """Central finite differences of the loss w.r.t. parameter entries
        validate the gradients computed through the coalescing scheduler."""
        from repro.models import (RNTNSentiment, TreeLSTMSentiment,
                                  tree_lstm_config)
        from repro.models.common import ModelConfig

        if model_key == "TreeLSTM":
            setup = (TreeLSTMSentiment,
                     tree_lstm_config(hidden=4, embed_dim=3, vocab_size=30))
        else:
            setup = (RNTNSentiment,
                     ModelConfig(hidden=3, embed_dim=3, vocab_size=30))
        model, built, feeds, fetches = self._model_setup(*setup,
                                                         batch_size=2)
        _, grads, _ = self._accumulated_grads(model, built, feeds, fetches,
                                              batching=True)

        loss_sess = repro.Session(built.graph, model.runtime,
                                  num_workers=36, record=False,
                                  batching=True)

        def loss_at():
            return float(loss_sess.run(built.loss, feeds))

        rng = np.random.default_rng(5)
        eps = 1e-3
        checked = 0
        for var in model.variables:
            base = np.array(model.runtime.variables.read(var.name))
            flat = base.reshape(-1)
            for idx in rng.choice(flat.size, size=min(3, flat.size),
                                  replace=False):
                plus = flat.copy()
                plus[idx] += eps
                model.runtime.variables.write(var.name,
                                              plus.reshape(base.shape))
                l_plus = loss_at()
                minus = flat.copy()
                minus[idx] -= eps
                model.runtime.variables.write(var.name,
                                              minus.reshape(base.shape))
                l_minus = loss_at()
                model.runtime.variables.write(var.name, base)
                numeric = (l_plus - l_minus) / (2 * eps)
                analytic = float(grads[var.name].reshape(-1)[idx])
                assert numeric == pytest.approx(analytic, rel=5e-2,
                                                abs=5e-4), \
                    f"{var.name}[{idx}]: fd={numeric} vs grad={analytic}"
                checked += 1
        assert checked >= 9
