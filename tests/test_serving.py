"""The streaming serving subsystem: RecursiveServer semantics.

The contract: a server's per-request results are **bit-identical** to a
one-shot ``Session.run`` of the same tree — on both engines, batched and
unbatched, under wave or continuous admission — while admission control
(max in-flight, queue cap) and per-request latency accounting behave per
:mod:`repro.runtime.server`.  Request streams are seeded, so serving
runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro import ops
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.graph.registry import all_op_types, register_op
from repro.harness import (compare_admission, compare_batching,
                           poisson_request_stream, serve_stream)
from repro.harness.serving import burst_request_stream
from repro.models import ModelConfig, TreeLSTMSentiment, TreeRNNSentiment
from repro.runtime import available_executors, resolve_executor
from repro.runtime.batching import QueueAwareBatchPolicy
from repro.runtime.server import ServerOverloaded

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=16, num_val=4, vocab_size=60, seed=11)


def _model(bank, cls=TreeRNNSentiment, hidden=10):
    return cls(ModelConfig(hidden=hidden, embed_dim=hidden, vocab_size=60),
               repro.Runtime())


def _oneshot_reference(model, trees, stream):
    """Per-request logits via one-shot Session.run on the b=1 graph."""
    built = model.build_recursive(1)
    session = repro.Session(built.graph, model.runtime, num_workers=36)
    return {rid: session.run(built.root_logits,
                             built.feed_dict(batch_trees([trees[idx]])))
            for rid, (_, idx) in enumerate(stream.arrivals)}


# -- bit-identical per-request results (the acceptance bar) -------------------


class TestBitIdentical:
    @pytest.mark.parametrize("engine,batching", [
        (engine, batching)
        for engine in available_executors()
        for batching in (False, True)
    ])
    @pytest.mark.timeout(120)
    def test_server_matches_oneshot_run(self, bank, engine, batching):
        """Server results == Session.run per request, both engines,
        batched and unbatched."""
        model = _model(bank)
        stream = poisson_request_stream(10, 2000.0, len(bank.train), seed=3)
        # the event engine simulates workers (cheap); real thread/process
        # pools stay small so the matrix does not oversubscribe the host
        result = serve_stream(model, bank.train, stream=stream,
                              max_in_flight=4, engine=engine,
                              num_workers=36 if engine == "event" else 4,
                              batching=batching, seed=3)
        reference = _oneshot_reference(model, bank.train, stream)
        assert result.instances == stream.num_requests
        assert set(result.request_logits) == set(reference)
        for rid, ref in reference.items():
            assert np.array_equal(ref, result.request_logits[rid]), rid

    def test_wave_admission_matches_oneshot_run(self, bank):
        model = _model(bank)
        stream = burst_request_stream(12, len(bank.train), seed=9)
        result = serve_stream(model, bank.train, stream=stream,
                              max_in_flight=4, admission="wave",
                              batching=True, seed=9)
        reference = _oneshot_reference(model, bank.train, stream)
        for rid, ref in reference.items():
            assert np.array_equal(ref, result.request_logits[rid]), rid

    def test_compare_batching_per_request(self, bank):
        """ServingResult carries per-request outputs keyed by request id;
        batched == unbatched for every individual request."""
        model = _model(bank, cls=TreeLSTMSentiment)
        unbatched, batched = compare_batching(model, bank.train, 8,
                                              num_workers=36, waves=2,
                                              seed=5)
        assert set(unbatched.request_logits) == set(batched.request_logits)
        assert len(unbatched.request_logits) == 16   # 2 waves x 8
        for rid in unbatched.request_logits:
            assert np.array_equal(unbatched.request_logits[rid],
                                  batched.request_logits[rid]), rid
        # the stacked view (request-id order) agrees too
        assert np.array_equal(unbatched.logits, batched.logits)
        assert batched.stats.batches > 0


# -- continuous admission beats waves -----------------------------------------


class TestAdmission:
    def test_continuous_beats_wave_at_equal_concurrency(self, bank):
        """No wave-tail starvation: identical stream, identical
        max_in_flight, continuous admission must win throughput."""
        model = _model(bank, cls=TreeLSTMSentiment, hidden=12)
        stream = burst_request_stream(24, len(bank.train), seed=7)
        wave, continuous = compare_admission(model, bank.train,
                                             stream=stream, max_in_flight=6,
                                             batching=True, seed=7)
        assert np.array_equal(wave.logits, continuous.logits)
        assert continuous.throughput > wave.throughput * 1.02, \
            (f"continuous {continuous.throughput:.1f} vs wave "
             f"{wave.throughput:.1f} instances/s")
        # the win comes out of queue time: the wave tail makes admitted-
        # late requests wait for whole earlier waves
        assert (continuous.latency_summary()["queue"]["p95"]
                < wave.latency_summary()["queue"]["p95"])

    def test_rejected_requests_surface_in_result(self, bank):
        model = _model(bank)
        result = serve_stream(model, bank.train, num_requests=8,
                              max_in_flight=1, queue_cap=2, seed=1)
        assert result.rejected == 5
        assert result.instances == 3
        assert len(result.request_logits) == 3

    def test_server_reuse_across_drains(self, bank):
        """A server session persists: submit -> drain -> submit -> drain."""
        model = _model(bank)
        built = model.build_recursive(1)
        session = repro.Session(built.graph, model.runtime, num_workers=36)
        feeds = built.feed_dict(batch_trees([bank.train[2]]))
        with session.serve(max_in_flight=2) as server:
            first = [server.submit(built.root_logits, feeds)
                     for _ in range(3)]
            server.drain()
            t_mid = server.stats.virtual_time
            second = [server.submit(built.root_logits, feeds)
                      for _ in range(3)]
            server.drain()
        assert server.completed == 6
        assert server.stats.virtual_time > t_mid
        assert server.stats.requests == 6
        values = [t.result() for t in first + second]
        for v in values[1:]:
            assert np.array_equal(values[0], v)

    def test_submit_after_close_raises(self, bank):
        model = _model(bank)
        built = model.build_recursive(1)
        session = repro.Session(built.graph, model.runtime, num_workers=36)
        server = session.serve()
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(built.root_logits,
                          built.feed_dict(batch_trees([bank.train[0]])))

    def test_invalid_knobs_rejected(self, bank):
        model = _model(bank)
        built = model.build_recursive(1)
        session = repro.Session(built.graph, model.runtime)
        with pytest.raises(ValueError):
            session.serve(max_in_flight=0)
        with pytest.raises(ValueError):
            session.serve(queue_cap=0)
        with pytest.raises(ValueError):
            session.serve(admission="bursty")


# -- backpressure on every registered executor --------------------------------
#
# ``queue_cap`` rejection and ``max_in_flight`` throttling are admission
# decisions the server takes synchronously at submit time, so they can be
# asserted deterministically on every backend: under the event engine all
# arrivals land at the same virtual instant (``at=0.0``); under the
# wall-clock backends the first admitted request parks on a gate op whose
# kernel blocks until the test releases it, so every later arrival
# deterministically finds zero free in-flight slots.


def _gate_kernel(op, inputs, ctx):
    gate = op.attrs["gate"]
    if not gate.wait(timeout=30):
        raise RuntimeError("serving gate never released")
    return [inputs[0]]


def _gated_graph(gate):
    if "ServingGate" not in all_op_types():
        register_op("ServingGate",
                    infer=lambda op: [(op.inputs[0].dtype,
                                       op.inputs[0].shape)],
                    kernel=_gate_kernel)
    graph = repro.Graph("gated_serving")
    with graph.as_default():
        x = ops.placeholder(repro.float32, (), "x")
        out = graph.add_op("ServingGate", [x], {"gate": gate}).outputs[0]
    return graph, x, out


@pytest.mark.parametrize("engine", available_executors())
class TestBackpressureAllExecutors:
    @pytest.mark.timeout(90)
    def test_queue_cap_rejects_with_backpressure(self, engine):
        """Arrivals beyond the queue cap are rejected, not lost."""
        virtual = resolve_executor(engine).virtual_clock
        gate = threading.Event()
        if virtual:
            gate.set()  # single-threaded simulator: kernels may not block
        graph, x, out = _gated_graph(gate)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine)
        kwargs = {"at": 0.0} if virtual else {}
        with session.serve(max_in_flight=1, queue_cap=2) as server:
            tickets = [server.submit(out, {x: float(k)}, **kwargs)
                       for k in range(8)]
            if not virtual:
                gate.set()
            server.drain()
        # capacity at the burst instant = 1 free slot + 2 queue seats;
        # the remaining 5 arrivals bounce off the cap
        rejected = [t for t in tickets if t.rejected]
        served = [t for t in tickets if not t.rejected]
        assert len(rejected) == 5
        assert server.completed == len(served) == 3
        assert server.rejected == 5
        assert server.stats.rejected_requests == 5
        for ticket in served:
            assert ticket.result() is not None
        for ticket in rejected:
            with pytest.raises(ServerOverloaded):
                ticket.result()
        # nothing lost: every submitted request resolved one way or other
        assert all(t.done for t in tickets)

    @pytest.mark.timeout(90)
    def test_max_in_flight_is_respected(self, engine):
        """Root instances in the engine never exceed the admission cap."""
        virtual = resolve_executor(engine).virtual_clock
        gate = threading.Event()
        if virtual:
            gate.set()
        graph, x, out = _gated_graph(gate)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine=engine)
        server = session.serve(max_in_flight=3)
        engine_obj = session._engine
        count_lock = threading.Lock()
        live = {"now": 0, "peak": 0}
        original = engine_obj.submit_root

        def counting_submit(graph, fetches, feed_map, key, on_complete):
            with count_lock:
                live["now"] += 1
                live["peak"] = max(live["peak"], live["now"])

            def wrapped(values):
                with count_lock:
                    live["now"] -= 1
                on_complete(values)
            return original(graph, fetches, feed_map, key, wrapped)

        engine_obj.submit_root = counting_submit
        kwargs = {"at": 0.0} if virtual else {}
        tickets = [server.submit(out, {x: 1.0}, **kwargs) for _ in range(9)]
        if not virtual:
            gate.set()
        server.drain()
        server.close()
        assert server.completed == 9
        assert all(t.result() == pytest.approx(1.0) for t in tickets)
        assert live["now"] == 0
        assert live["peak"] == 3


# -- determinism (seeded request streams) -------------------------------------


class TestDeterminism:
    def test_poisson_stream_is_reproducible(self):
        a = poisson_request_stream(20, 500.0, 16, seed=13)
        b = poisson_request_stream(20, 500.0, 16, seed=13)
        assert a == b
        c = poisson_request_stream(20, 500.0, 16, seed=14)
        assert a != c
        times = [t for t, _ in a.arrivals]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_serving_run_is_bit_identical_run_to_run(self, bank):
        """Fixed seed => identical logits, virtual time and latencies."""
        results = []
        for _ in range(2):
            model = _model(bank)
            results.append(serve_stream(model, bank.train, num_requests=12,
                                        arrival_rate=1000.0, max_in_flight=4,
                                        batching=True, seed=21))
        first, second = results
        assert first.virtual_seconds == second.virtual_seconds
        assert first.stats.queue_times == second.stats.queue_times
        assert first.stats.engine_times == second.stats.engine_times
        assert np.array_equal(first.logits, second.logits)
        assert first.latency_summary() == second.latency_summary()


# -- latency accounting through the server ------------------------------------


class TestLatencyAccounting:
    def test_ticket_timeline_is_consistent(self, bank):
        model = _model(bank)
        built = model.build_recursive(1)
        session = repro.Session(built.graph, model.runtime, num_workers=36)
        feeds = built.feed_dict(batch_trees([bank.train[3]]))
        with session.serve(max_in_flight=1) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0)
                       for _ in range(4)]
            server.drain()
        for ticket in tickets:
            assert ticket.arrival_time == 0.0
            assert ticket.admit_time >= ticket.arrival_time
            assert ticket.complete_time > ticket.admit_time
            assert ticket.latency == pytest.approx(
                ticket.queue_time + ticket.engine_time)
        # serialized admission: each request queues behind its
        # predecessors, so queue times strictly increase
        queue_times = [t.queue_time for t in tickets]
        assert queue_times[0] == 0.0
        assert all(b > a for a, b in zip(queue_times, queue_times[1:]))
        summary = server.stats.latency_summary()
        assert summary["requests"] == 4
        assert summary["total"]["max"] == pytest.approx(
            max(t.latency for t in tickets))

    def test_open_loop_arrivals_accrue_no_queue_time_when_idle(self, bank):
        """At a trickle arrival rate every request is admitted at once."""
        model = _model(bank)
        result = serve_stream(model, bank.train, num_requests=5,
                              arrival_rate=1.0, max_in_flight=8, seed=2)
        assert result.stats.queue_times == [0.0] * 5


# -- queue-aware flush policy -------------------------------------------------


class TestQueueAwarePolicy:
    def test_timeout_scales_with_load(self):
        policy = QueueAwareBatchPolicy()
        sig = ("MatMul", (), ())
        base = super(QueueAwareBatchPolicy, policy).timeout_for(sig)
        policy.note_queue_depth(0, 10)
        shallow = policy.timeout_for(sig)
        policy.note_queue_depth(10, 10)
        deep = policy.timeout_for(sig)
        assert shallow == pytest.approx(
            max(policy.min_timeout, base * policy.shallow_scale))
        assert deep == pytest.approx(
            min(policy.max_timeout, base * policy.deep_scale))
        assert deep > shallow
        # depth beyond cap clamps to full load
        policy.note_queue_depth(25, 10)
        assert policy.load == 1.0
        with pytest.raises(ValueError):
            policy.note_queue_depth(1, 0)

    def test_server_feeds_queue_depth_to_policy(self, bank):
        """The server reports occupancy on enqueue/admit transitions."""
        model = _model(bank)
        policy = QueueAwareBatchPolicy()
        result = serve_stream(model, bank.train, num_requests=12,
                              max_in_flight=2, queue_cap=16, batching=True,
                              batch_policy=policy, seed=4)
        assert result.instances == 12
        # the burst filled the queue (load seen > 0) and the drain
        # emptied it again (final load 0)
        assert policy.load == 0.0
        assert policy.snapshot()   # flushes were observed per signature


# -- failure isolation --------------------------------------------------------


class TestErrors:
    def _failing_setup(self):
        graph = repro.Graph("serving_err")
        with graph.as_default():
            table = ops.constant(np.arange(4, dtype=np.float32))
            idx = ops.placeholder(repro.int32, (), "idx")
            out = ops.gather(table, idx)
        session = repro.Session(graph, repro.Runtime(), num_workers=2)
        return session, idx, out

    def test_engine_error_fails_outstanding_requests(self):
        session, idx, out = self._failing_setup()
        server = session.serve(max_in_flight=1)
        good = server.submit(out, {idx: 1}, at=0.0)
        bad = server.submit(out, {idx: 99}, at=0.0)     # out of range
        queued = server.submit(out, {idx: 2}, at=0.0)
        with pytest.raises(repro.EngineError):
            server.drain()
        assert good.result() == pytest.approx(1.0)
        with pytest.raises(repro.EngineError):
            bad.result()
        # the request queued behind the failure is failed, not lost
        assert queued.done
        with pytest.raises(repro.EngineError):
            queued.result()

    @pytest.mark.timeout(60)
    def test_threaded_engine_error_does_not_hang_drain(self):
        graph = repro.Graph("serving_err_threaded")
        with graph.as_default():
            table = ops.constant(np.arange(4, dtype=np.float32))
            idx = ops.placeholder(repro.int32, (), "idx")
            out = ops.gather(table, idx)
        session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                engine="threaded")
        server = session.serve(max_in_flight=2)
        bad = server.submit(out, {idx: 77})
        with pytest.raises(repro.EngineError):
            server.drain()
        with pytest.raises(repro.EngineError):
            bad.result(timeout=10)
        server.close()
