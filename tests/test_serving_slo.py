"""SLO-aware serving: deadlines, shedding, cancellation, fairness.

The contract (see :mod:`repro.runtime.server`):

* admission is earliest-deadline-first within priority classes
  (``order="edf"``), degrading to exact FIFO when no request carries a
  deadline or priority; ``order="fifo"`` keeps the blind baseline;
* tenants share the server under weighted fair queueing;
* ``shedding="cost"`` rejects arrivals whose deadline is infeasible
  against the predicted backlog or that would breach ``queue_cost_cap``
  — by *predicted engine cost* (root-plan op costs x size hint x EWMA
  calibration), not blind queue depth;
* cancellations and enforced deadlines drop queued requests and unwind
  in-flight root frames in the scheduler core — on every registered
  executor — without perturbing surviving requests' bit-exact values;
* dropped requests (rejected / cancelled / timed out) never contribute
  latency samples, and goodput/deadline-miss counters account for every
  submitted request.

Also regression coverage for the admission races this PR fixed: the
``close()``/``submit()`` race, ``result(timeout=...)`` on the virtual
engine, and the batch-policy notification lock discipline.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro import ops
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.graph.registry import all_op_types, register_op
from repro.harness import serve_stream
from repro.models import ModelConfig, TreeRNNSentiment
from repro.runtime import available_executors, resolve_executor
from repro.runtime.batching import QueueAwareBatchPolicy
from repro.runtime.server import (DeadlineExceeded, RequestCancelled,
                                  ServerOverloaded)

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=16, num_val=4, vocab_size=60, seed=11)


def _model(bank, hidden=8):
    return TreeRNNSentiment(ModelConfig(hidden=hidden, embed_dim=hidden,
                                        vocab_size=60), repro.Runtime())


def _session(bank, **kwargs):
    model = _model(bank)
    built = model.build_recursive(1)
    session = repro.Session(built.graph, model.runtime, num_workers=36,
                            **kwargs)
    return built, session


def _feed(built, tree):
    return built.feed_dict(batch_trees([tree]))


# the same blocking gate op the backpressure tests use: on wall-clock
# backends the in-flight request parks on the gate, making admission and
# cancellation states deterministic; the virtual engine pre-sets it
def _gate_kernel(op, inputs, ctx):
    gate = op.attrs["gate"]
    if not gate.wait(timeout=30):
        raise RuntimeError("serving gate never released")
    return [inputs[0]]


def _gated_graph(gate):
    if "ServingGateSLO" not in all_op_types():
        register_op("ServingGateSLO",
                    infer=lambda op: [(op.inputs[0].dtype,
                                       op.inputs[0].shape)],
                    kernel=_gate_kernel)
    graph = repro.Graph("gated_serving_slo")
    with graph.as_default():
        x = ops.placeholder(repro.float32, (), "x")
        out = graph.add_op("ServingGateSLO", [x], {"gate": gate}).outputs[0]
    return graph, x, out


def _gated_server(engine, **serve_kwargs):
    virtual = resolve_executor(engine).virtual_clock
    gate = threading.Event()
    if virtual:
        gate.set()
    graph, x, out = _gated_graph(gate)
    session = repro.Session(graph, repro.Runtime(), num_workers=2,
                            engine=engine)
    server = session.serve(**serve_kwargs)
    return server, gate, x, out, virtual


# -- EDF admission ------------------------------------------------------------


class TestEDF:
    def test_edf_admits_by_deadline(self, bank):
        """Serialized admission pops the tightest deadline first."""
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1,
                           enforce_deadlines=False) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0,
                                     deadline=d) for d in (9.0, 3.0, 6.0)]
            server.drain()
        order = [t.request_id for t in
                 sorted(tickets, key=lambda t: t.admit_time)]
        assert order == [1, 2, 0]

    def test_fifo_mode_ignores_deadlines(self, bank):
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1, order="fifo",
                           enforce_deadlines=False) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0,
                                     deadline=d) for d in (9.0, 3.0, 6.0)]
            server.drain()
        order = [t.request_id for t in
                 sorted(tickets, key=lambda t: t.admit_time)]
        assert order == [0, 1, 2]

    def test_priority_outranks_deadline(self, bank):
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1,
                           enforce_deadlines=False) as server:
            loose = server.submit(built.root_logits, feeds, at=0.0,
                                  deadline=50.0, priority=1)
            tight = server.submit(built.root_logits, feeds, at=0.0,
                                  deadline=1.0)
            server.drain()
        assert loose.admit_time < tight.admit_time

    def test_edf_without_deadlines_is_fifo(self, bank):
        """The default order changes nothing for plain requests: queue
        times still strictly increase under serialized admission."""
        built, session = _session(bank)
        feeds = _feed(built, bank.train[3])
        with session.serve(max_in_flight=1) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0)
                       for _ in range(4)]
            server.drain()
        queue_times = [t.queue_time for t in tickets]
        assert queue_times[0] == 0.0
        assert all(b > a for a, b in zip(queue_times, queue_times[1:]))

    def test_invalid_slo_knobs(self, bank):
        built, session = _session(bank)
        with pytest.raises(ValueError):
            session.serve(order="lifo")
        with pytest.raises(ValueError):
            session.serve(shedding="random")
        with pytest.raises(ValueError):
            session.serve(queue_cost_cap=0.0)
        with pytest.raises(ValueError):
            session.serve(capacity_factor=-1.0)
        server = session.serve()
        feeds = _feed(built, bank.train[0])
        with pytest.raises(ValueError):
            server.submit(built.root_logits, feeds, deadline=1.0,
                          timeout=1.0)
        with pytest.raises(ValueError):
            server.submit(built.root_logits, feeds, timeout=0.0)
        server.close()


# -- weighted fair queueing ---------------------------------------------------


class TestFairQueueing:
    def test_weighted_interleave(self, bank):
        """Weight 2:1 -> tenant a gets ~2 of every 3 serialized slots
        while both lanes are backlogged."""
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1,
                           tenant_weights={"a": 2.0, "b": 1.0},
                           enforce_deadlines=False) as server:
            ta = [server.submit(built.root_logits, feeds, at=0.0,
                                tenant="a") for _ in range(6)]
            tb = [server.submit(built.root_logits, feeds, at=0.0,
                                tenant="b") for _ in range(6)]
            server.drain()
        by_admit = sorted(ta + tb, key=lambda t: t.admit_time)
        first_nine = [t.tenant for t in by_admit[:9]]
        assert first_nine.count("a") == 6
        assert first_nine.count("b") == 3

    def test_flooding_tenant_cannot_starve_another(self, bank):
        """A single late-lane request is served within a weight-fair
        bound, not behind the whole flood."""
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1,
                           enforce_deadlines=False) as server:
            flood = [server.submit(built.root_logits, feeds, at=0.0,
                                   tenant="noisy") for _ in range(10)]
            lone = server.submit(built.root_logits, feeds, at=0.0,
                                 tenant="quiet")
            server.drain()
        earlier = sum(1 for t in flood if t.admit_time < lone.admit_time)
        assert earlier <= 2, f"quiet tenant waited behind {earlier} floods"


# -- cost-predicted shedding --------------------------------------------------


class TestCostShedding:
    def test_cost_cap_sheds_overload(self, bank):
        built, session = _session(bank)
        with session.serve(max_in_flight=1, shedding="cost",
                           queue_cost_cap=0.002) as server:
            tickets = [server.submit(built.root_logits,
                                     _feed(built, tree), at=0.0,
                                     size_hint=tree.num_nodes)
                       for tree in bank.train]
            server.drain()
        served = [t for t in tickets if not t.rejected]
        shed = [t for t in tickets if t.rejected]
        assert shed and served
        assert server.rejected == len(shed)
        for t in shed:
            with pytest.raises(ServerOverloaded):
                t.result()
        assert all(t.value is not None for t in served)

    def test_idle_server_never_sheds_by_cost_cap(self, bank):
        """A request that would start immediately is admitted even when
        its predicted cost dwarfs the cost cap."""
        built, session = _session(bank)
        with session.serve(max_in_flight=2, shedding="cost",
                           queue_cost_cap=1e-9) as server:
            ticket = server.submit(built.root_logits,
                                   _feed(built, bank.train[0]), at=0.0,
                                   size_hint=10_000)
            server.drain()
        assert not ticket.rejected
        assert ticket.value is not None

    def test_infeasible_deadline_shed_at_admission(self, bank):
        """A deadline tighter than the request's own predicted cost is
        hopeless: shed it up front, before it consumes anything."""
        built, session = _session(bank)
        with session.serve(max_in_flight=2, shedding="cost") as server:
            hopeless = server.submit(built.root_logits,
                                     _feed(built, bank.train[0]), at=0.0,
                                     timeout=1e-12, size_hint=1000)
            feasible = server.submit(built.root_logits,
                                     _feed(built, bank.train[0]), at=0.0,
                                     timeout=10.0)
            server.drain()
        assert hopeless.rejected
        with pytest.raises(ServerOverloaded, match="infeasible"):
            hopeless.result()
        assert feasible.value is not None

    def test_completion_feedback_calibrates_predictions(self, bank):
        built, session = _session(bank)
        with session.serve(max_in_flight=4, shedding="cost") as server:
            for tree in bank.train[:8]:
                server.submit(built.root_logits, _feed(built, tree),
                              at=0.0, size_hint=tree.num_nodes)
            server.drain()
            scale = server.cost_scale
        assert scale != 1.0
        assert 1e-4 <= scale <= 1e4


# -- cancellation -------------------------------------------------------------


class TestCancellation:
    def test_cancel_queued_request(self, bank):
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0)
                       for _ in range(4)]
            assert tickets[2].cancel()
            server.drain()
        assert tickets[2].status == "cancelled"
        with pytest.raises(RequestCancelled):
            tickets[2].result()
        assert server.cancelled == 1
        assert server.completed == 3
        assert all(t.value is not None
                   for t in tickets if t is not tickets[2])

    def test_cancel_after_completion_loses(self, bank):
        built, session = _session(bank)
        with session.serve() as server:
            ticket = server.submit(built.root_logits,
                                   _feed(built, bank.train[0]), at=0.0)
            server.drain()
            assert ticket.cancel() is False
        assert ticket.status == "done"
        assert server.cancelled == 0

    def test_midflight_cancel_survivors_bit_identical(self, bank):
        """Cancelling an in-flight tree does not perturb concurrent
        requests: survivors match a one-shot Session.run bit for bit."""
        built, session = _session(bank)
        with session.serve(max_in_flight=4) as server:
            tickets = [server.submit(built.root_logits,
                                     _feed(built, tree), at=0.0)
                       for tree in bank.train[:4]]
            # fires after admission, before any tree can complete
            session._engine.schedule(1e-6, tickets[1].cancel)
            server.drain()
        assert tickets[1].status == "cancelled"
        ref_built, ref_session = _session(bank)
        for i in (0, 2, 3):
            ref = ref_session.run(ref_built.root_logits,
                                  _feed(ref_built, bank.train[i]))
            assert np.array_equal(ref, tickets[i].value), i

    @pytest.mark.timeout(90)
    @pytest.mark.parametrize("engine", available_executors())
    def test_midflight_cancel_unwinds_on_every_executor(self, engine):
        """cancel() retires an admitted root frame on all backends: the
        cancelled request resolves with RequestCancelled, its in-flight
        slot frees for the next request, survivors complete correctly."""
        server, gate, x, out, virtual = _gated_server(engine,
                                                      max_in_flight=1)
        kwargs = {"at": 0.0} if virtual else {}
        with server:
            tickets = [server.submit(out, {x: float(k)}, **kwargs)
                       for k in range(4)]
            if virtual:
                server._session._engine.schedule(1e-9, tickets[0].cancel)
            else:
                # the first request is parked on the gate in-flight;
                # cancelling it must free the slot with the gate still
                # closed, or the drain below would hang
                assert tickets[0].cancel()
                gate.set()
            server.drain()
        if virtual:
            assert tickets[0].status == "cancelled"
        survivors = [t for t in tickets if t.status == "done"]
        assert len(survivors) == 3
        assert server.cancelled == 1
        assert server.completed == 3
        for t in survivors:
            assert t.result() == pytest.approx(float(t.request_id))
        with pytest.raises(RequestCancelled):
            tickets[0].result()


# -- deadline enforcement -----------------------------------------------------


class TestDeadlines:
    def test_timeouts_drop_queued_requests(self, bank):
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0,
                                     timeout=0.002) for _ in range(6)]
            server.drain()
        timed_out = [t for t in tickets if t.timed_out]
        assert timed_out
        assert server.timed_out == len(timed_out)
        for t in timed_out:
            with pytest.raises(DeadlineExceeded):
                t.result()
        assert server.stats.deadline_misses >= len(timed_out)

    @pytest.mark.timeout(90)
    @pytest.mark.parametrize("engine", available_executors())
    def test_inflight_timeout_unwinds_on_every_executor(self, engine):
        """An enforced deadline reached mid-flight cancels the frame on
        all backends (event: a virtual expiry event; wall-clock: a
        timer firing while the kernel is parked on the gate)."""
        server, gate, x, out, virtual = _gated_server(engine,
                                                      max_in_flight=1)
        with server:
            if virtual:
                victim = server.submit(out, {x: 1.0}, at=0.0,
                                       timeout=1e-9)
                ok = server.submit(out, {x: 2.0}, at=0.0)
                server.drain()
            else:
                victim = server.submit(out, {x: 1.0}, timeout=0.2)
                ok = server.submit(out, {x: 2.0})
                with pytest.raises(DeadlineExceeded):
                    victim.result(timeout=20)
                gate.set()
                server.drain()
        assert victim.status == "timed_out"
        assert ok.result() == pytest.approx(2.0)
        assert server.timed_out == 1
        assert server.completed == 1

    def test_unenforced_deadlines_only_score_misses(self, bank):
        built, session = _session(bank)
        feeds = _feed(built, bank.train[0])
        with session.serve(max_in_flight=1,
                           enforce_deadlines=False) as server:
            tickets = [server.submit(built.root_logits, feeds, at=0.0,
                                     timeout=1e-6) for _ in range(4)]
            server.drain()
        assert all(t.status == "done" for t in tickets)
        assert server.timed_out == 0
        assert server.stats.deadline_misses == 4
        assert server.stats.goodput_requests == 0

    def test_result_timeout_rejected_on_virtual_engine(self, bank):
        """Regression: result(timeout=...) used to silently drain the
        whole simulation; it must refuse with an explanation instead."""
        built, session = _session(bank)
        with session.serve() as server:
            ticket = server.submit(built.root_logits,
                                   _feed(built, bank.train[0]), at=0.0)
            with pytest.raises(ValueError, match="virtual"):
                ticket.result(timeout=1.0)
            # and crucially it did NOT drain as a side effect
            assert not ticket.done
            assert ticket.result() is not None

    @pytest.mark.timeout(60)
    def test_result_timeout_honored_on_wall_clock(self):
        server, gate, x, out, _ = _gated_server("threaded",
                                                max_in_flight=1)
        ticket = server.submit(out, {x: 3.0})
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.05)
        gate.set()
        assert ticket.result(timeout=20) == pytest.approx(3.0)
        server.close()


# -- dropped requests vs the latency reservoir (all executors) ----------------


@pytest.mark.parametrize("engine", available_executors())
class TestDroppedRequestAccounting:
    @pytest.mark.timeout(90)
    def test_drops_excluded_from_percentiles_counted_in_goodput(self,
                                                               engine):
        """One run with completions + a rejection + a cancellation + a
        timeout: only completions contribute latency samples, while the
        goodput/miss counters account for every submitted request."""
        server, gate, x, out, virtual = _gated_server(
            engine, max_in_flight=1, queue_cap=3, order="fifo")
        kwargs = {"at": 0.0} if virtual else {}
        with server:
            tickets = [server.submit(out, {x: float(k)}, **kwargs)
                       for k in range(4)]
            # 1 in flight + 3 queued = at cap: the 5th bounces
            rejected = server.submit(out, {x: 9.0}, **kwargs)
            if virtual:
                # cancels must fire inside the simulation, after the
                # t=0 arrivals have filled the queue
                engine_obj = server._session._engine
                engine_obj.schedule(1e-9, tickets[2].cancel)
                engine_obj.schedule(1e-9, tickets[3].cancel)
                server.drain()
            else:
                assert tickets[2].cancel()
                assert tickets[3].cancel()
                gate.set()
                server.drain()
        stats = server.stats
        assert rejected.status == "rejected"
        assert server.completed == 2
        assert server.cancelled == 2
        assert server.rejected == 1
        # the reservoir holds exactly the completions
        assert stats.requests == 2
        assert len(stats.request_latencies) == 2
        assert len(stats.queue_times) == 2
        summary = stats.latency_summary()
        assert summary["requests"] == 2
        assert summary["cancelled"] == 2
        assert summary["rejected"] == 1
        # no deadlines in this run: every completion is goodput
        assert stats.deadline_misses == 0
        assert stats.goodput_requests == 2

    @pytest.mark.timeout(90)
    def test_timed_out_requests_score_as_misses_not_samples(self, engine):
        server, gate, x, out, virtual = _gated_server(
            engine, max_in_flight=1, order="fifo")
        with server:
            if virtual:
                first = server.submit(out, {x: 1.0}, at=0.0)
                victim = server.submit(out, {x: 2.0}, at=0.0,
                                       timeout=1e-9)
                server.drain()
            else:
                first = server.submit(out, {x: 1.0})
                victim = server.submit(out, {x: 2.0}, timeout=0.2)
                with pytest.raises(DeadlineExceeded):
                    victim.result(timeout=20)
                gate.set()
                server.drain()
        stats = server.stats
        assert victim.status == "timed_out"
        assert first.status == "done"
        assert stats.requests == 1
        assert len(stats.request_latencies) == 1
        assert stats.timed_out_requests == 1
        assert stats.deadline_misses == 1
        assert stats.goodput_requests == 1


# -- admission-race regressions -----------------------------------------------


class TestAdmissionRaces:
    @pytest.mark.timeout(90)
    def test_submit_close_race_never_hangs_or_leaks(self):
        """Regression for the close()/submit() race: the closed flag now
        flips under the server lock, so a concurrent submit either lands
        (and is drained) or raises cleanly — repeat the race a few times
        and require every ticket to resolve."""
        for round_ in range(5):
            gate = threading.Event()
            gate.set()
            graph, x, out = _gated_graph(gate)
            session = repro.Session(graph, repro.Runtime(), num_workers=2,
                                    engine="threaded")
            server = session.serve(max_in_flight=2)
            accepted, refused = [], []
            started = threading.Event()

            def hammer():
                started.set()
                for k in range(200):
                    try:
                        accepted.append(server.submit(out, {x: float(k)}))
                    except RuntimeError:
                        refused.append(k)
                        return

            thread = threading.Thread(target=hammer)
            thread.start()
            started.wait()
            server.close()
            thread.join(timeout=30)
            assert not thread.is_alive()
            # every accepted submit resolved: drained by close, never
            # dropped into a torn-down engine
            assert all(t.done for t in accepted)
            assert all(t.error is None for t in accepted)

    def test_policy_notified_outside_lock_with_slack(self, bank):
        """The queue-aware policy hears depth and deadline slack; its
        flush timeout clamps toward zero as a deadline approaches."""
        policy = QueueAwareBatchPolicy()
        sig = ("MatMul", (), ())
        policy.note_queue_depth(10, 10)
        relaxed = policy.timeout_for(sig)
        policy.note_deadline_slack(0.001)
        urgent = policy.timeout_for(sig)
        assert urgent <= relaxed
        assert urgent <= max(policy.min_timeout,
                             0.001 * policy.urgency_fraction)
        policy.note_deadline_slack(None)    # queue drained of deadlines
        assert policy.timeout_for(sig) == relaxed

        calls = []

        class Recorder(QueueAwareBatchPolicy):
            def note_deadline_slack(self, slack):
                calls.append(slack)
                super().note_deadline_slack(slack)

        model = _model(bank)
        serve_stream(model, bank.train, num_requests=8, max_in_flight=2,
                     batching=True, batch_policy=Recorder(),
                     deadline_slack=10.0, enforce_deadlines=False, seed=3)
        assert calls
        assert any(s is not None for s in calls)
