"""Threaded-engine continuous-admission soak.

Hundreds of requests with random arrival jitter pushed into a live
thread-pool engine, guarding the serving path against the failure modes
real servers hit: scheduler deadlock (the watchdog), lost requests
(every ticket must resolve), and instance leaks (in-flight count, server
queue and coalescer buckets must all return to zero).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.models import ModelConfig, TreeRNNSentiment
from repro.runtime.batching import QueueAwareBatchPolicy

pytestmark = [pytest.mark.serving, pytest.mark.stress]

NUM_REQUESTS = 200


@pytest.fixture(scope="module")
def setup():
    bank = make_treebank(num_train=12, num_val=2, vocab_size=50, seed=19)
    model = TreeRNNSentiment(ModelConfig(hidden=6, embed_dim=6,
                                         vocab_size=50), repro.Runtime())
    built = model.build_recursive(1)
    feeds = [built.feed_dict(batch_trees([tree])) for tree in bank.train]
    session = repro.Session(built.graph, model.runtime, num_workers=36)
    reference = [session.run(built.root_logits, f) for f in feeds]
    return model, built, feeds, reference


@pytest.mark.timeout(180)
def test_threaded_soak_no_deadlock_no_lost_requests(setup):
    """200 jittered arrivals through a batching threaded server."""
    model, built, feeds, reference = setup
    session = repro.Session(built.graph, model.runtime, num_workers=4,
                            engine="threaded", batching=True,
                            batch_policy=QueueAwareBatchPolicy())
    rng = np.random.default_rng(23)
    tree_ids = rng.integers(0, len(feeds), size=NUM_REQUESTS)
    jitter = rng.uniform(0.0, 0.002, size=NUM_REQUESTS)
    with session.serve(max_in_flight=8, queue_cap=NUM_REQUESTS) as server:
        tickets = []
        for idx, gap in zip(tree_ids, jitter):
            tickets.append(server.submit(built.root_logits, feeds[idx]))
            if gap > 0.0015:     # occasional pauses drain the wavefront
                time.sleep(gap)
        server.drain()

        # no lost requests: every ticket resolved with a value
        assert server.completed == NUM_REQUESTS
        assert server.rejected == 0
        assert all(t.done for t in tickets)
        for idx, ticket in zip(tree_ids, tickets):
            assert ticket.error is None
            assert np.array_equal(ticket.result(), reference[idx]), \
                ticket.request_id

        # no instance leaks in the live ready queue / coalescer
        assert server.in_flight == 0
        assert server.queue_depth == 0
        engine = session._engine
        assert len(engine._coalescer) == 0
        assert engine._queue.empty()

        # accounting covered every request exactly once
        stats = server.stats
        assert stats.requests == NUM_REQUESTS
        assert len(stats.queue_times) == NUM_REQUESTS
        assert all(q >= 0.0 for q in stats.queue_times)
        assert all(e > 0.0 for e in stats.engine_times)
        assert stats.batches > 0   # continuous admission still fuses


@pytest.mark.timeout(120)
def test_threaded_soak_reuse_and_second_burst(setup):
    """The pool survives a second burst after going fully idle."""
    model, built, feeds, reference = setup
    session = repro.Session(built.graph, model.runtime, num_workers=3,
                            engine="threaded", batching=True)
    with session.serve(max_in_flight=4) as server:
        for _ in range(2):
            tickets = [server.submit(built.root_logits, feeds[i % len(feeds)])
                       for i in range(40)]
            server.drain()
            assert all(t.done for t in tickets)
            assert server.in_flight == 0
            # idle gap: flush timers expire, workers sit on empty queues
            time.sleep(0.05)
        assert server.completed == 80
        for i, ticket in enumerate(tickets):
            assert np.array_equal(ticket.result(),
                                  reference[i % len(feeds)])
