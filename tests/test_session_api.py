"""Session / public API surface tests."""

import numpy as np
import pytest

import repro
from repro import ops


class TestSessionConstruction:
    def test_default_graph_and_runtime(self):
        graph = repro.reset_default_graph()
        repro.reset_default_runtime()
        with graph.as_default():
            out = ops.constant(5.0)
        session = repro.Session()
        assert session.graph is graph
        assert session.run(out) == pytest.approx(5.0)

    def test_default_runtime_is_shared(self):
        runtime = repro.reset_default_runtime()
        assert repro.default_runtime() is runtime
        v = repro.Variable("shared_v", np.float32(2.0))
        assert runtime.variables.read("shared_v") == pytest.approx(2.0)

    def test_record_override_per_run(self, graph, runtime):
        with repro.SubGraph("dbl") as dbl:
            x = dbl.input(repro.float32, ())
            dbl.output(ops.multiply(x, 2.0))
        out = dbl(ops.constant(3.0))
        session = repro.Session(graph, runtime, record=False)
        session.run(out, record=True)
        assert runtime.cache.stores > 0

    def test_non_tensor_fetch_rejected(self, graph, runtime):
        session = repro.Session(graph, runtime)
        with pytest.raises(TypeError, match="not a Tensor"):
            session.run("loss")

    def test_non_tensor_feed_key_rejected(self, graph, runtime):
        out = ops.constant(1.0)
        session = repro.Session(graph, runtime)
        with pytest.raises(TypeError, match="not a Tensor"):
            session.run(out, {"x": 1.0})

    def test_feed_from_other_graph_rejected(self, graph, runtime):
        out = ops.constant(1.0)
        other = repro.Graph("other")
        with other.as_default():
            ph = ops.placeholder(repro.float32, ())
        session = repro.Session(graph, runtime)
        with pytest.raises(ValueError, match="different graph"):
            session.run(out, {ph: 1.0})

    def test_stats_available_after_run(self, graph, runtime):
        out = ops.add(ops.constant(1.0), ops.constant(2.0))
        session = repro.Session(graph, runtime)
        session.run(out)
        assert session.last_stats is not None
        assert session.last_stats.ops_executed == 3
        assert session.last_stats.virtual_time > 0


class TestPublicApiSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_ops_exports_resolve(self):
        for name in ops.__all__:
            assert hasattr(ops, name), name

    def test_dtype_reexports(self):
        assert repro.float32.name == "float32"
        assert repro.as_dtype("int32") is repro.int32

    def test_registry_has_all_core_ops(self):
        from repro.graph.registry import all_op_types
        registered = set(all_op_types())
        for required in ("Add", "MatMul", "Invoke", "InvokeGrad", "Cond",
                         "CondGrad", "Loop", "LoopGrad", "CacheLookup",
                         "TAWrite", "TARead", "ReadVariable", "AccumGrad"):
            assert required in registered, required

    def test_duplicate_op_registration_rejected(self):
        from repro.graph.registry import register_op
        with pytest.raises(ValueError, match="already registered"):
            register_op("Add", infer=lambda op: [])


class TestMixedWorkloads:
    def test_recursion_inside_loop(self, graph, runtime):
        """A while_loop whose body makes a recursive call."""
        with repro.SubGraph("tri") as tri:
            n = tri.input(repro.int32, ())
            tri.declare_outputs([(repro.int32, ())])
            tri.output(repro.cond(ops.less_equal(n, 0),
                                  lambda: ops.constant(0),
                                  lambda: ops.add(n, tri(n - 1))))

        def body(i, total):
            return ops.add(i, 1), ops.add(total, tri(i))

        _, total = repro.while_loop(lambda i, t: ops.less(i, 5), body,
                                    [ops.constant(0), ops.constant(0)])
        # sum of triangular numbers T(0..4) = 0+1+3+6+10 = 20
        assert repro.Session(graph, runtime).run(total) == 20

    def test_loop_inside_recursion(self, graph, runtime):
        """A recursive SubGraph whose body runs a while_loop."""
        with repro.SubGraph("fact_sum") as fs:
            n = fs.input(repro.int32, ())
            fs.declare_outputs([(repro.int32, ())])

            def recurse():
                # sum 1..n via a loop, plus recursion on n-1
                _, s = repro.while_loop(
                    lambda i, s: ops.less_equal(i, n),
                    lambda i, s: (ops.add(i, 1), ops.add(s, i)),
                    [ops.constant(1), ops.constant(0)])
                return ops.add(s, fs(n - 1))

            fs.output(repro.cond(ops.less_equal(n, 0),
                                 lambda: ops.constant(0), recurse))
        out = fs(ops.constant(3))
        # T(3)+T(2)+T(1) = 6+3+1 = 10
        assert repro.Session(graph, runtime).run(out) == 10

    def test_gradient_through_recursion_inside_loop(self, graph, runtime):
        with repro.SubGraph("pow2") as p:
            x = p.input(repro.float32, ())
            d = p.input(repro.int32, ())
            p.declare_outputs([(repro.float32, ())])
            p.output(repro.cond(ops.less_equal(d, 0),
                                lambda: ops.identity(x),
                                lambda: ops.multiply(x, p(x, d - 1))))
        xin = ops.placeholder(repro.float32, ())

        def body(i, acc):
            return ops.add(i, 1), ops.add(acc, p(xin, ops.constant(1)))

        _, total = repro.while_loop(lambda i, a: ops.less(i, 3), body,
                                    [ops.constant(0), ops.constant(0.0)])
        grads, _ = repro.gradients(total, [xin])
        session = repro.Session(graph, runtime, record=True)
        # total = 3 * x^2, d/dx = 6x
        assert session.run(grads[0], {xin: 2.0}) == pytest.approx(12.0,
                                                                  rel=1e-4)

    def test_two_subgraphs_sharing_variables(self, graph, runtime):
        w = repro.Variable("shared_w", np.float32(3.0), runtime=runtime)
        with repro.SubGraph("a") as a:
            x = a.input(repro.float32, ())
            a.output(ops.multiply(x, w.read()))
        with repro.SubGraph("b") as b:
            x = b.input(repro.float32, ())
            b.output(ops.add(x, w.read()))
        out = b(a(ops.constant(2.0)))
        # (2*3) + 3 = 9
        assert repro.Session(graph, runtime).run(out) == pytest.approx(9.0)
