"""Sustained-soak serving: bounded memory and SLO accounting at scale.

One long-lived server (event engine, ``keep_tickets=False``) serves a
heavy-tailed request stream in chunks — deadlines enforced, cost
shedding on, a client cancellation every few hundred requests — and the
resident set must *plateau*: completed tickets, their feeds and values
are dropped as requests finish, the latency reservoir is bounded, and
the coalescer/queue end every chunk empty.

CI runs a ~30s variant (a few thousand requests).  ``make soak`` runs
the full 10^5-request version (``SOAK_REQUESTS=100000``) and records
its row into ``BENCH_serving.json`` (``SOAK_RECORD=1``).
"""

from __future__ import annotations

import os
import sys

import pytest

import repro
from repro.data import make_treebank
from repro.harness import run_soak
from repro.models import ModelConfig, TreeRNNSentiment

pytestmark = [pytest.mark.soak, pytest.mark.serving]

#: CI-sized default; `make soak` overrides to 100_000
NUM_REQUESTS = int(os.environ.get("SOAK_REQUESTS", "2500"))


@pytest.mark.timeout(1800)
def test_sustained_soak_bounded_memory_and_slo_accounting():
    # heavy-tailed sizes: log-normal lengths, tail an order of magnitude
    # above the mean — the overload comes in bursts of big trees
    bank = make_treebank(num_train=48, num_val=4, vocab_size=80,
                         mean_log_words=2.1, sigma_log_words=0.8,
                         max_words=120, seed=17)
    model = TreeRNNSentiment(ModelConfig(hidden=6, embed_dim=6,
                                         vocab_size=80), repro.Runtime())
    result = run_soak(
        model, bank.train,
        num_requests=NUM_REQUESTS,
        chunk=max(250, NUM_REQUESTS // 40),
        arrival_rate=600.0,
        max_in_flight=16,
        shedding="cost",
        queue_cost_cap=0.08,
        deadline_slack=0.02,
        cancel_every=200,
        batching=True,
        seed=29,
    )
    print()
    print(result.summary())

    # every submitted request is accounted for, exactly once
    assert (result.completed + result.rejected + result.timed_out
            + result.cancelled) == result.requests
    # the server actually served under load (not shed everything)
    assert result.completed > result.requests // 2
    assert result.cancelled > 0
    # misses = timed-out drops + late completions; goodput covers the rest
    assert result.deadline_misses >= result.timed_out
    assert result.goodput == (result.completed
                              - (result.deadline_misses - result.timed_out))
    # the tail percentile the SLO story is about exists and is ordered
    total = result.latency["total"]
    assert total["p50"] <= total["p99"] <= total["p99.9"] <= total["max"]

    # bounded memory: with keep_tickets=False the resident set plateaus
    # (late-half peak within a small tolerance of early-half peak)
    growth = result.rss_growth
    assert growth is not None, "need >= 4 RSS samples"
    assert growth < 1.35, (
        f"RSS grew {growth:.2f}x across the soak: {result.rss_samples_kb}")

    if os.environ.get("SOAK_RECORD"):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        sys.path.insert(0, root)
        from benchmarks.common import merge_bench_json
        path = merge_bench_json("serving", {"soak": {
            "requests": result.requests,
            "completed": result.completed,
            "rejected": result.rejected,
            "timed_out": result.timed_out,
            "cancelled": result.cancelled,
            "deadline_misses": result.deadline_misses,
            "goodput": result.goodput,
            "virtual_seconds": result.virtual_seconds,
            "wall_seconds": result.wall_seconds,
            "latency_total": result.latency.get("total", {}),
            "rss_samples_kb": result.rss_samples_kb,
            "rss_growth": result.rss_growth,
        }})
        print(f"recorded soak row -> {path}")
