"""Sparse embedding gradients and memory-aware execution.

The contract under test (see ARCHITECTURE.md "Value lifetime"):

* ``GatherGrad`` emits :class:`~repro.graph.sparse.IndexedSlices`
  gradients that are **bit-identical** to the dense scatter on every
  registered executor and on both dispatch tiers (dynamic scheduler and
  compiled level plan) — same losses, same accumulated gradients, same
  variable values after a sparse-apply optimizer step.
* Eager slot release: a frame slot is freed at its last consumer, never
  earlier, and fetched (pinned) slots survive to the end of the run.
* Memory-budgeted scheduling reorders dispatch but never changes values
  or sheds work.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ops
from repro.core.cache import ROOT_KEY
from repro.data import batch_trees, make_treebank
from repro.graph.sparse import (IndexedSlices, set_sparse_gather_grads,
                                sparse_gather_grads_enabled)
from repro.models import (ModelConfig, TreeLSTMSentiment, TreeRNNSentiment,
                          tree_lstm_config)
from repro.nn import Adagrad, SGD, Trainer
from repro.runtime.engine import EventEngine
from repro.runtime.plan import plan_for_fetches
from repro.runtime.scheduler import available_executors

ENGINES = available_executors()

MODELS = [
    ("treernn", TreeRNNSentiment,
     ModelConfig(vocab_size=50, hidden=8, embed_dim=8)),
    ("treelstm", TreeLSTMSentiment,
     tree_lstm_config(vocab_size=50, hidden=6, embed_dim=5)),
]


@pytest.fixture(scope="module")
def bank():
    return make_treebank(num_train=12, num_val=0, vocab_size=50,
                         max_words=12, mean_log_words=2.2, seed=29)


@pytest.fixture(autouse=True)
def _restore_sparse_mode():
    previous = sparse_gather_grads_enabled()
    yield
    set_sparse_gather_grads(previous)


# -- IndexedSlices unit contract ----------------------------------------------

class TestIndexedSlices:
    def test_from_scatter_equals_dense_scatter(self):
        rng = np.random.default_rng(3)
        for trial in range(8):
            rows, cols, picks = 17, 5, int(rng.integers(1, 40))
            idx = rng.integers(0, rows, size=picks)
            grads = rng.standard_normal((picks, cols)).astype(np.float32)
            dense = np.zeros((rows, cols), np.float32)
            np.add.at(dense, idx, grads)
            sl = IndexedSlices.from_scatter(idx, grads, (rows, cols))
            assert np.unique(sl.indices).size == sl.indices.size
            assert np.array_equal(sl.to_dense(), dense), trial

    def test_from_scatter_casts_to_table_dtype(self):
        sl = IndexedSlices.from_scatter(
            np.array([1, 1]), np.ones((2, 3), np.float64), (4, 3),
            dtype=np.float32)
        assert sl.dtype == np.float32
        assert sl.dense_shape == (4, 3)

    def test_add_sparse_sparse_preserves_order(self):
        a = IndexedSlices(np.array([0, 2]), np.ones((2, 2), np.float32),
                          (4, 2))
        b = IndexedSlices(np.array([2, 3]),
                          np.full((2, 2), 2.0, np.float32), (4, 2))
        combined = a + b
        assert isinstance(combined, IndexedSlices)
        dense = np.zeros((4, 2), np.float32)
        np.add.at(dense, [0, 2], np.ones((2, 2), np.float32))
        np.add.at(dense, [2, 3], np.full((2, 2), 2.0, np.float32))
        assert np.array_equal(combined.to_dense(), dense)
        assert np.array_equal(combined.unique().to_dense(), dense)

    def test_add_with_dense_operands(self):
        sl = IndexedSlices(np.array([1]), np.ones((1, 2), np.float32),
                           (3, 2))
        base = np.full((3, 2), 5.0, np.float32)
        expect = base.copy()
        expect[1] += 1.0
        assert np.array_equal(sl + base, expect)       # sparse + dense
        assert np.array_equal(base + sl, expect)       # dense + sparse
        buf = base.copy()
        sl.add_to(buf)
        assert np.array_equal(buf, expect)

    def test_nbytes_counts_both_arrays(self):
        sl = IndexedSlices(np.zeros(4, np.int64),
                           np.zeros((4, 8), np.float32), (100, 8))
        assert sl.nbytes == 4 * 8 + 4 * 8 * 4


# -- sparse-vs-dense equivalence matrix ---------------------------------------

def _train_once(engine, cls, config, trees, sparse, use_profile, workers=4):
    """One recorded forward+backward; returns (loss, grads dict)."""
    set_sparse_gather_grads(sparse)
    runtime = repro.Runtime()
    model = cls(config, runtime)
    built = model.build_recursive(len(trees))
    batch = batch_trees(trees)
    with built.graph.as_default():
        _, updates = repro.gradients(built.loss, [])
    fetches = [built.loss] + [op.outputs[-1] for op in updates]
    session = repro.Session(built.graph, runtime, num_workers=workers,
                            engine=engine, record=True)
    runtime.accumulators.zero()
    kwargs = ({"shape_profile": built.shape_profiles(batch)}
              if use_profile else {})
    values = session.run(fetches, built.feed_dict(batch), **kwargs)
    grads = {name: np.copy(runtime.accumulators.read(name))
             for name in runtime.accumulators.names()}
    if use_profile:
        assert session.last_stats.level_plan_hits == 1
        assert session.last_stats.level_plan_fallbacks == 0
    return float(values[0]), grads


def _assert_same_grads(ref, got):
    (ref_loss, ref_grads), (loss, grads) = ref, got
    assert ref_loss == loss
    assert set(grads) == set(ref_grads)
    for name in ref_grads:
        assert np.array_equal(grads[name], ref_grads[name]), name


class TestSparseDenseEquivalence:
    """Bit-identity of sparse GatherGrad across executors × tiers."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("use_profile", [False, True],
                             ids=["dynamic", "level-plan"])
    def test_gradients_identical(self, bank, engine, use_profile):
        name, cls, config = MODELS[1]  # TreeLSTM: embedding-heavy
        dense = _train_once(engine, cls, config, bank.train[:3],
                            sparse=False, use_profile=use_profile)
        sparse = _train_once(engine, cls, config, bank.train[:3],
                             sparse=True, use_profile=use_profile)
        _assert_same_grads(dense, sparse)

    @pytest.mark.parametrize("name,cls,config", MODELS,
                             ids=[m[0] for m in MODELS])
    def test_randomized_trees_identical(self, name, cls, config):
        """Randomized shapes × both models × every executor × both tiers."""
        wide = make_treebank(num_train=16, num_val=0, vocab_size=50,
                             max_words=16, mean_log_words=2.4, seed=31)
        for engine in ENGINES:
            for lo in (0, 8):
                for use_profile in (False, True):
                    trees = wide.train[lo:lo + 3]
                    dense = _train_once(engine, cls, config, trees,
                                        sparse=False,
                                        use_profile=use_profile)
                    sparse = _train_once(engine, cls, config, trees,
                                         sparse=True,
                                         use_profile=use_profile)
                    _assert_same_grads(dense, sparse)

    def test_sparse_mode_accumulates_indexed_slices(self, bank):
        """With sparse mode on, the embedding table's accumulated
        gradient is actually sparse (the whole point) and densifies at
        the explicit ``read(dense=True)`` boundary only."""
        set_sparse_gather_grads(True)
        runtime = repro.Runtime()
        model = TreeLSTMSentiment(
            tree_lstm_config(vocab_size=50, hidden=6, embed_dim=5), runtime)
        built = model.build_recursive(2)
        batch = batch_trees(bank.train[:2])
        with built.graph.as_default():
            _, updates = repro.gradients(built.loss, [])
        session = repro.Session(built.graph, runtime, num_workers=2,
                                record=True)
        runtime.accumulators.zero()
        session.run([built.loss] + [op.outputs[-1] for op in updates],
                    built.feed_dict(batch))
        sparse_names = [
            name for name in runtime.accumulators.names()
            if isinstance(runtime.accumulators.read(name, dense=False),
                          IndexedSlices)]
        assert sparse_names, "no IndexedSlices gradient reached the " \
                             "accumulator — sparse GatherGrad is dead"
        for name in sparse_names:
            sl = runtime.accumulators.read(name, dense=False)
            dense = runtime.accumulators.read(name)
            assert isinstance(dense, np.ndarray)
            assert np.array_equal(sl.to_dense(), dense)
            # far fewer touched rows than the vocab-sized table
            assert sl.indices.size < sl.dense_shape[0]


class TestSparseOptimizerEquivalence:
    """Sparse apply (touched rows only) moves variables bit-identically
    to the dense apply path."""

    def _step(self, bank, sparse_opt, sparse_grads, optimizer_cls,
              engine="event"):
        set_sparse_gather_grads(sparse_grads)
        runtime = repro.Runtime()
        model = TreeLSTMSentiment(
            tree_lstm_config(vocab_size=50, hidden=6, embed_dim=5), runtime)
        built = model.build_recursive(4)
        batch = batch_trees(bank.train[:4])
        trainer = Trainer(built.graph, built.loss,
                          optimizer_cls(0.05, sparse=sparse_opt), runtime,
                          session_kwargs=dict(num_workers=4, engine=engine))
        loss = trainer.step(built.feed_dict(batch))
        return loss, runtime.variables.snapshot()

    @pytest.mark.parametrize("optimizer_cls", [SGD, Adagrad],
                             ids=["sgd", "adagrad"])
    def test_variables_identical_after_step(self, bank, optimizer_cls):
        ref_loss, ref_vars = self._step(bank, sparse_opt=False,
                                        sparse_grads=False,
                                        optimizer_cls=optimizer_cls)
        loss, got_vars = self._step(bank, sparse_opt=True,
                                    sparse_grads=True,
                                    optimizer_cls=optimizer_cls)
        assert ref_loss == loss
        assert set(ref_vars) == set(got_vars)
        for name in ref_vars:
            assert np.array_equal(ref_vars[name], got_vars[name]), name

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sparse_step_identical_across_executors(self, bank, engine):
        ref = self._step(bank, sparse_opt=True, sparse_grads=True,
                         optimizer_cls=Adagrad, engine="event")
        got = self._step(bank, sparse_opt=True, sparse_grads=True,
                         optimizer_cls=Adagrad, engine=engine)
        assert ref[0] == got[0]
        for name in ref[1]:
            assert np.array_equal(ref[1][name], got[1][name]), name


# -- eager slot release --------------------------------------------------------

class TestSlotRelease:
    def _diamond(self, graph):
        """a -> (b, c) -> d: every intermediate has a known last consumer."""
        a = ops.constant(np.ones((16, 16), np.float32), name="a")
        b = ops.add(a, a, name="b")
        c = ops.multiply(a, a, name="c")
        d = ops.add(b, c, name="d")
        return a, b, c, d

    def _run_frame(self, graph, fetch, track=False):
        plan = plan_for_fetches(graph, {fetch.op})
        eng = EventEngine(repro.Runtime(), num_workers=2,
                          track_live_bytes=track)
        frame = eng._make_frame(plan, {}, key=ROOT_KEY, depth=0,
                                record=False,
                                on_complete=lambda f: None, owner=None,
                                pin_locs=((fetch.op.id, fetch.index),))
        eng._start_frame(frame)
        eng._loop()
        return eng, plan, frame

    def test_non_pinned_slots_freed_pinned_survive(self, graph):
        a, b, c, d = self._diamond(graph)
        eng, plan, frame = self._run_frame(graph, d)
        for tensor in (a, b, c):
            slot = plan.index_of[tensor.op.id]
            assert frame.values[slot] is None, tensor.op.name
        out = frame.values[plan.index_of[d.op.id]]
        assert out is not None
        assert np.array_equal(out[0], np.full((16, 16), 3.0, np.float32))

    def test_recording_frames_keep_every_slot(self, graph):
        """record=True disables release: the backward pass may read any
        forward value from the cache."""
        a, b, c, d = self._diamond(graph)
        plan = plan_for_fetches(graph, {d.op})
        eng = EventEngine(repro.Runtime(), num_workers=2, record=True)
        frame = eng._make_frame(plan, {}, key=ROOT_KEY, depth=0,
                                record=True,
                                on_complete=lambda f: None, owner=None,
                                pin_locs=((d.op.id, d.index),))
        assert frame.release_counts is None
        eng._start_frame(frame)
        eng._loop()
        for tensor in (a, b, c, d):
            assert frame.values[plan.index_of[tensor.op.id]] is not None

    def test_live_bytes_unwinds_at_frame_completion(self, graph):
        """After the run, tracked live bytes return to zero — every
        stored value was subtracted either at its release or in the
        frame-completion sweep (the fetch is handed off in
        ``on_complete``) — and the peak saw at least the fetch."""
        a, b, c, d = self._diamond(graph)
        eng, plan, frame = self._run_frame(graph, d, track=True)
        out = frame.values[plan.index_of[d.op.id]][0]
        assert eng.stats.peak_live_bytes >= out.nbytes
        assert eng._live_bytes == 0

    def test_model_run_releases_through_sessions(self, bank):
        """End-to-end: an inference session's fetched values match with
        eager release active (release is unconditional on the
        non-recording path, so equality here certifies no slot was freed
        before its last consumer)."""
        runtime = repro.Runtime()
        model = TreeRNNSentiment(
            ModelConfig(vocab_size=50, hidden=8, embed_dim=8), runtime)
        built = model.build_recursive(3)
        batch = batch_trees(bank.train[:3])
        session = repro.Session(built.graph, runtime, num_workers=4)
        ref = session.run(built.root_logits, built.feed_dict(batch))
        again = session.run(built.root_logits, built.feed_dict(batch))
        assert np.array_equal(ref, again)


# -- memory-budgeted scheduling -----------------------------------------------

class TestMemoryBudget:
    def _run(self, bank, **session_kwargs):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(
            ModelConfig(vocab_size=50, hidden=8, embed_dim=8), runtime)
        built = model.build_recursive(4)
        batch = batch_trees(bank.train[:4])
        with built.graph.as_default():
            _, updates = repro.gradients(built.loss, [])
        fetches = [built.loss] + [op.outputs[-1] for op in updates]
        session = repro.Session(built.graph, runtime, num_workers=4,
                                record=True, **session_kwargs)
        runtime.accumulators.zero()
        values = session.run(fetches, built.feed_dict(batch))
        grads = {name: np.copy(runtime.accumulators.read(name))
                 for name in runtime.accumulators.names()}
        return values, grads, session.last_stats

    def test_budget_reorders_but_never_changes_values(self, bank):
        ref_values, ref_grads, ref_stats = self._run(bank)
        # a tiny budget keeps the scheduler permanently "over budget":
        # every dispatch takes the deepest-first path
        values, grads, stats = self._run(bank, memory_budget=1,
                                         track_live_bytes=True)
        assert stats.ops_executed == ref_stats.ops_executed  # no shedding
        assert float(values[0]) == float(ref_values[0])
        for name in ref_grads:
            assert np.array_equal(grads[name], ref_grads[name]), name

    def test_peak_live_bytes_only_when_tracking(self, bank):
        _, _, untracked = self._run(bank)
        assert untracked.peak_live_bytes == 0
        _, _, tracked = self._run(bank, track_live_bytes=True)
        assert tracked.peak_live_bytes > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_budget_accepted_by_every_executor(self, bank, engine):
        """memory_budget is a SchedulerCore knob: every backend accepts
        it and still produces the reference loss."""
        ref_values, ref_grads, _ = self._run(bank)
        values, grads, _ = self._run(bank, engine=engine,
                                     memory_budget=1 << 20,
                                     track_live_bytes=True)
        assert float(values[0]) == float(ref_values[0])
        for name in ref_grads:
            assert np.array_equal(grads[name], ref_grads[name]), name
