"""Training-path micro-batching: batched backward pass equivalence.

The contract under test (the training analogue of ``test_batching.py``):
running a full training step with ``batching=True`` / ``"adaptive"`` must
produce **bit-identical** losses and accumulated gradients to unbatched
execution, on both engines, while actually fusing backward work —
``InvokeGrad`` frame spawns, ``CacheLookup`` bulk cache reads and the
gradient-body kernels.  Bit-identity of the gradients rests on two
mechanisms: value-preserving batched kernels (forward and backward values
are identical) and the canonical frame-key ordering of
``GradientAccumulator`` sums.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.models import (RNTNSentiment, TreeLSTMSentiment, tree_lstm_config)
from repro.models.common import ModelConfig
from repro.nn.optimizers import Adagrad
from repro.nn.trainer import Trainer

MODEL_SETUPS = {
    "TreeLSTM": (TreeLSTMSentiment,
                 lambda: tree_lstm_config(hidden=8, embed_dim=6,
                                          vocab_size=40)),
    "RNTN": (RNTNSentiment,
             lambda: ModelConfig(hidden=6, embed_dim=6, vocab_size=40)),
}


def _training_setup(model_key, batch_size=3, seed=23):
    cls, config_fn = MODEL_SETUPS[model_key]
    config = config_fn()
    runtime = repro.Runtime()
    model = cls(config, runtime)
    bank = make_treebank(num_train=max(4, batch_size), num_val=2,
                         vocab_size=config.vocab_size, seed=seed)
    built = model.build_recursive(batch_size)
    feeds = built.feed_dict(batch_trees(bank.train[:batch_size]))
    return model, built, feeds


def _grad_step(model, built, feeds, **session_kwargs):
    """One forward+backward phase; returns (loss, grads dict, stats)."""
    model.runtime.accumulators.zero()
    _, updates = repro.gradients(built.loss, [])
    fetches = [built.loss] + [op.outputs[-1] for op in updates]
    sess = repro.Session(built.graph, model.runtime, num_workers=8,
                         record=True, **session_kwargs)
    loss = float(sess.run(fetches, feeds)[0])
    grads = {name: np.array(model.runtime.accumulators.read(name))
             for name in model.runtime.accumulators.names()}
    return loss, grads, sess.last_stats


class TestBitIdenticalTraining:
    """Losses and gradients match unbatched execution bit for bit."""

    @pytest.mark.parametrize("model_key", sorted(MODEL_SETUPS))
    @pytest.mark.parametrize("mode", [True, "adaptive"])
    def test_event_engine(self, model_key, mode):
        model, built, feeds = _training_setup(model_key)
        ref_loss, ref_grads, ref_stats = _grad_step(model, built, feeds,
                                                    batching=False)
        assert ref_stats.batches == 0
        loss, grads, stats = _grad_step(model, built, feeds, batching=mode)
        assert stats.batches > 0
        assert loss == ref_loss  # losses are forward values: exact
        assert sorted(grads) == sorted(ref_grads)
        for name in ref_grads:
            assert np.array_equal(grads[name], ref_grads[name]), \
                f"gradient of {name} not bit-identical under batching"

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("model_key", sorted(MODEL_SETUPS))
    def test_threaded_engine(self, model_key):
        model, built, feeds = _training_setup(model_key, batch_size=2)
        ref_loss, ref_grads, _ = _grad_step(model, built, feeds,
                                            batching=False)
        loss, grads, stats = _grad_step(model, built, feeds,
                                        engine="threaded", batching=True)
        assert stats.batches > 0
        assert loss == ref_loss
        for name in ref_grads:
            assert np.array_equal(grads[name], ref_grads[name]), \
                f"gradient of {name} differs between engines"

    def test_backward_work_actually_fuses(self):
        """The new training-path fusions really happen: gradient frames,
        cache lookups and backward-body kernels all appear as batches."""
        model, built, feeds = _training_setup("TreeLSTM", batch_size=4)
        _, _, stats = _grad_step(model, built, feeds, batching=True)
        assert "CacheLookup" in stats.batch_count_by_type
        assert "InvokeGrad" in stats.batch_count_by_type
        assert "GatherGrad" in stats.batch_count_by_type

    def test_full_step_and_convergence_parity(self):
        """Multi-step training: parameters evolve identically (bitwise)
        whether or not the coalescing scheduler is on."""
        histories = {}
        for mode in (False, "adaptive"):
            model, built, feeds = _training_setup("RNTN", batch_size=2)
            trainer = Trainer(built.graph, built.loss, Adagrad(0.05),
                              model.runtime,
                              session_kwargs=dict(num_workers=8),
                              batching=mode)
            losses = [trainer.step(feeds) for _ in range(3)]
            params = {v.name: np.array(v.value()) for v in model.variables}
            histories[mode] = (losses, params)
        losses_ref, params_ref = histories[False]
        losses_mb, params_mb = histories["adaptive"]
        assert losses_ref == losses_mb
        for name in params_ref:
            assert np.array_equal(params_ref[name], params_mb[name])


class TestFiniteDifference:
    """Independent validation: FD of the loss vs batched-training grads."""

    @pytest.mark.parametrize("engine", ["event", "threaded"])
    def test_fd_matches_batched_gradients(self, engine):
        model, built, feeds = _training_setup("TreeLSTM", batch_size=2,
                                              seed=31)
        _, grads, _ = _grad_step(model, built, feeds, engine=engine,
                                 batching=True)
        loss_sess = repro.Session(built.graph, model.runtime, num_workers=8,
                                  record=False, batching=True, engine=engine)
        rng = np.random.default_rng(7)
        eps = 1e-3
        checked = 0
        for var in model.variables:
            base = np.array(model.runtime.variables.read(var.name))
            flat = base.reshape(-1)
            for idx in rng.choice(flat.size, size=min(2, flat.size),
                                  replace=False):
                for sign, store in ((+1, "plus"), (-1, "minus")):
                    bumped = flat.copy()
                    bumped[idx] += sign * eps
                    model.runtime.variables.write(
                        var.name, bumped.reshape(base.shape))
                    if store == "plus":
                        l_plus = float(loss_sess.run(built.loss, feeds))
                    else:
                        l_minus = float(loss_sess.run(built.loss, feeds))
                model.runtime.variables.write(var.name, base)
                numeric = (l_plus - l_minus) / (2 * eps)
                analytic = float(grads[var.name].reshape(-1)[idx])
                assert numeric == pytest.approx(analytic, rel=5e-2,
                                                abs=5e-4), \
                    f"{var.name}[{idx}]: fd={numeric} vs grad={analytic}"
                checked += 1
        assert checked >= 10


class TestTrainerKnob:
    """The ``batching=`` knob on the Trainer plumbs through correctly."""

    def test_trainer_batching_flag(self):
        model, built, feeds = _training_setup("RNTN", batch_size=2)
        trainer = Trainer(built.graph, built.loss, Adagrad(0.05),
                          model.runtime,
                          session_kwargs=dict(num_workers=8),
                          batching=True)
        trainer.step(feeds)
        assert trainer.last_step_stats.batches > 0

    def test_trainer_adaptive_policy_persists_across_steps(self):
        from repro.runtime.batching import AdaptiveBatchPolicy
        model, built, feeds = _training_setup("RNTN", batch_size=2)
        trainer = Trainer(built.graph, built.loss, Adagrad(0.05),
                          model.runtime,
                          session_kwargs=dict(num_workers=8),
                          batching="adaptive")
        policy = trainer.session._engine.batch_policy
        assert isinstance(policy, AdaptiveBatchPolicy)
        trainer.step(feeds)
        flushes_after_one = sum(s.flushes
                                for s in policy._signatures.values())
        assert flushes_after_one > 0
        trainer.step(feeds)
        assert policy is trainer.session._engine.batch_policy
        assert (sum(s.flushes for s in policy._signatures.values())
                > flushes_after_one)

    def test_trainer_explicit_policy_implies_batching(self):
        model, built, feeds = _training_setup("RNTN", batch_size=2)
        trainer = Trainer(built.graph, built.loss, Adagrad(0.05),
                          model.runtime,
                          session_kwargs=dict(num_workers=8),
                          batch_policy=repro.BatchPolicy(max_batch=8))
        trainer.step(feeds)
        assert trainer.last_step_stats.batches > 0
        assert trainer.last_step_stats.max_batch <= 8
